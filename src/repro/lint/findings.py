"""Findings, severities and the conformance/deadlock allowlist.

A *finding* is one concrete defect (or suspicion) anchored to a source
location, identified by a check id (``COV001`` ...) and a stable
*fingerprint* — a short string that survives reformatting and line-number
churn, e.g. ``CON001:WB_ACK`` or ``DLK002:NACK->UNDELE_REQ@_retry_recall``.
Fingerprints are what the allowlist matches on: intentional abstraction
gaps between the simulator and the model checker are recorded once, with a
mandatory justification comment, instead of silencing whole checks.
"""

import enum
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import List, Optional

from ..common.errors import ConfigError


class Severity(enum.Enum):
    """How bad a finding is; drives exit codes and SARIF levels."""

    ERROR = "error"      # a protocol bug until proven (allowlisted) otherwise
    WARNING = "warning"  # heuristic finding; review, then fix or allowlist
    NOTE = "note"        # informational (e.g. unresolvable dynamic emission)

    @property
    def rank(self):
        return {"note": 0, "warning": 1, "error": 2}[self.value]


@dataclass
class Finding:
    """One defect reported by a check."""

    check_id: str
    severity: Severity
    message: str
    fingerprint: str
    file: Optional[str] = None
    line: Optional[int] = None
    side: str = "sim"  # "sim" | "mc" | "both"

    @property
    def key(self):
        """The allowlist key: check id + fingerprint."""
        return "%s:%s" % (self.check_id, self.fingerprint)

    def location(self):
        if self.file is None:
            return "<protocol>"
        return "%s:%s" % (self.file, self.line if self.line else "?")


@dataclass
class AllowEntry:
    """One allowlisted fingerprint with its mandatory justification."""

    key: str
    reason: str
    line: int
    used: bool = False


class Allowlist:
    """Parsed ``lint_allowlist.txt``.

    Format: one entry per line, ``CHECKID:fingerprint  # justification``.
    Blank lines and pure comment lines are ignored.  The justification is
    *required* — an entry without one is a configuration error, because an
    unexplained suppression is exactly the kind of silent gap this tool
    exists to prevent.

    The fingerprint part may contain ``*``/``?`` glob wildcards, so one
    reviewed entry can cover a family of findings with a single cause
    (e.g. ``CON003:*->UPDATE`` for every transition the model hoists into
    its update rule).  The check-id part never globs.
    """

    def __init__(self, entries=None, path=None):
        self.path = path
        self._entries = {}
        for entry in entries or []:
            self._entries[entry.key] = entry

    @classmethod
    def load(cls, path):
        entries = []
        with open(path) as fileobj:
            for lineno, raw in enumerate(fileobj, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                key, _, reason = line.partition("#")
                key = key.strip()
                reason = reason.strip()
                if not reason:
                    raise ConfigError(
                        "%s:%d: allowlist entry %r has no justification "
                        "comment (format: 'CHECKID:fingerprint  # why')"
                        % (path, lineno, key))
                if ":" not in key:
                    raise ConfigError(
                        "%s:%d: malformed allowlist key %r (expected "
                        "'CHECKID:fingerprint')" % (path, lineno, key))
                entries.append(AllowEntry(key=key, reason=reason,
                                          line=lineno))
        return cls(entries, path=str(path))

    def match(self, finding):
        """True (and mark used) if ``finding`` is allowlisted."""
        entry = self._entries.get(finding.key)
        if entry is None:
            for candidate in self._entries.values():
                check_id, _, pattern = candidate.key.partition(":")
                if (check_id == finding.check_id
                        and fnmatchcase(finding.fingerprint, pattern)):
                    entry = candidate
                    break
        if entry is None:
            return False
        entry.used = True
        return True

    def stale_entries(self):
        """Entries that matched nothing this run (candidates for removal)."""
        return [e for e in self._entries.values() if not e.used]

    def __len__(self):
        return len(self._entries)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    allowlisted: List[Finding] = field(default_factory=list)
    stale_allowlist: List[AllowEntry] = field(default_factory=list)
    root: Optional[str] = None
    allowlist_path: Optional[str] = None
    stats: dict = field(default_factory=dict)

    def count(self, severity):
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def errors(self):
        return self.count(Severity.ERROR)

    @property
    def warnings(self):
        return self.count(Severity.WARNING)

    def exit_code(self, fail_on=Severity.ERROR):
        """0 when clean at the threshold, 1 when findings gate the build."""
        worst = max((f.severity.rank for f in self.findings), default=-1)
        return 1 if worst >= fail_on.rank else 0

    def sorted_findings(self):
        return sorted(self.findings,
                      key=lambda f: (-f.severity.rank, f.check_id,
                                     f.fingerprint))
