"""Renderers for lint reports: human-readable text, JSON, and SARIF 2.1.0."""

import json

from .findings import Severity

#: SARIF wants its own level vocabulary; ours happens to match.
_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning",
                Severity.NOTE: "note"}

#: One-line rule descriptions for SARIF's rule metadata.
RULE_DESCRIPTIONS = {
    "COV001": "Message emitted but no handler registered",
    "COV002": "Message declared but never emitted (dead message)",
    "COV003": "MsgType missing from the hub dispatch table",
    "CON001": "Sim message with no live model-checker counterpart",
    "CON002": "Model token with no sim counterpart",
    "CON003": "Sim transition the spec (or model) does not allow",
    "CON004": "Model transition the spec (or sim) does not allow",
    "CON005": "Spec-required sim transition absent from the simulator",
    "CON006": "Spec-required model transition absent from the model",
    "SPC001": "Overlapping guards in one spec trigger group",
    "SPC002": "Non-exhaustive guards in one spec trigger group",
    "SPC003": "Declared spec state never installed",
    "SPC004": "Spec message never emitted or never handled",
    "SPC005": "Spec emission cycle with no NACK-family hop",
    "SPC006": "Unpaired request or reply to a non-request in the spec",
    "SPC007": "Dispatch table out of sync with the protocol spec",
    "DLK001": "Message-dependency cycle not broken by a NACK",
    "DLK002": "NACK retry path with no bounding counter",
    "RCH001": "State no transition ever enters",
    "RCH002": "State entered but never examined",
    "EXT001": "Statically unresolvable emission",
    "ARN001": "Arena handler table references an unknown MsgType",
    "ALW001": "Stale allowlist entry",
}


def render_text(report, verbose=False, title="repro lint"):
    """The default human-readable rendering."""
    lines = []
    stats = report.stats
    lines.append("%s: %s" % (title, report.root or "<tree>"))
    if stats:
        lines.append(
            "  graph: %d sim messages / %d handled, %d mc tokens / %d "
            "handled, %d state enums"
            % (stats.get("sim_messages", 0), stats.get("sim_handled", 0),
               stats.get("mc_messages", 0), stats.get("mc_handled", 0),
               stats.get("state_enums", 0)))
        protocols = stats.get("protocols") or {}
        if protocols:
            for name in sorted(protocols):
                lines.append("  %s: %s" % (name, protocols[name]))
        conformance = stats.get("conformance") or {}
        if conformance:
            source = conformance.get("source", "heuristic")
            if source == "spec":
                lines.append(
                    "  conformance source: guarded-action specs (%s) — "
                    "gaps justified in-spec, not in the allowlist"
                    % ", ".join(conformance.get("specs", ())))
            else:
                lines.append(
                    "  conformance source: name-map heuristic (no "
                    "spec/protocols/ in this tree)")
    lines.append("")
    for finding in report.sorted_findings():
        lines.append("%s %s [%s] %s" % (finding.severity.value.upper(),
                                        finding.check_id,
                                        finding.location(),
                                        finding.message))
        lines.append("    fingerprint: %s" % finding.key)
    if not report.findings:
        lines.append("clean: no findings above the allowlist")
    if report.allowlisted and verbose:
        lines.append("")
        lines.append("allowlisted (%d):" % len(report.allowlisted))
        for finding in report.allowlisted:
            lines.append("  %s %s" % (finding.key, finding.message))
    elif report.allowlisted:
        lines.append("")
        lines.append("(%d finding(s) allowlisted in %s)"
                     % (len(report.allowlisted),
                        report.allowlist_path or "allowlist"))
    lines.append("")
    lines.append("%d error(s), %d warning(s), %d note(s)"
                 % (report.errors, report.warnings,
                    report.count(Severity.NOTE)))
    return "\n".join(lines)


def _finding_dict(finding):
    return {
        "check_id": finding.check_id,
        "severity": finding.severity.value,
        "fingerprint": finding.fingerprint,
        "key": finding.key,
        "message": finding.message,
        "file": finding.file,
        "line": finding.line,
        "side": finding.side,
    }


def render_json(report):
    """Machine-readable rendering (stable keys; consumed by tests/CI)."""
    return json.dumps({
        "root": report.root,
        "allowlist": report.allowlist_path,
        "stats": report.stats,
        "findings": [_finding_dict(f) for f in report.sorted_findings()],
        "allowlisted": [_finding_dict(f) for f in report.allowlisted],
        "stale_allowlist": [{"key": e.key, "line": e.line,
                             "reason": e.reason}
                            for e in report.stale_allowlist],
        "summary": {
            "errors": report.errors,
            "warnings": report.warnings,
            "notes": report.count(Severity.NOTE),
        },
    }, indent=2, sort_keys=True)


def render_sarif(report):
    """Minimal SARIF 2.1.0 document (one run, one driver)."""
    rule_ids = sorted({f.check_id for f in report.findings}
                      | set(RULE_DESCRIPTIONS))
    rules = [{
        "id": rule_id,
        "shortDescription": {
            "text": RULE_DESCRIPTIONS.get(rule_id, rule_id)},
    } for rule_id in rule_ids]
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for finding in report.sorted_findings():
        result = {
            "ruleId": finding.check_id,
            "ruleIndex": rule_index[finding.check_id],
            "level": _SARIF_LEVEL[finding.severity],
            "message": {"text": finding.message},
            "partialFingerprints": {"reproLint/v1": finding.key},
        }
        if finding.file:
            result["locations"] = [{
                "physicalLocation": {
                    "artifactLocation": {"uri": "src/repro/" + finding.file},
                    "region": {"startLine": finding.line or 1},
                },
            }]
        results.append(result)
    return json.dumps({
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "docs/static_analysis.md",
                "rules": rules,
            }},
            "results": results,
        }],
    }, indent=2, sort_keys=True)
