"""repro.lint — static protocol analyzer.

Extracts the protocol graph from the simulator sources (handler tables,
message emissions) and from the abstract model checker, then runs a
registry of static checks over them: handler coverage, sim ↔ model
conformance diffing, deadlock/livelock heuristics, and state
reachability.  See ``docs/static_analysis.md``.

Entry point: :func:`run_lint` (also exposed as ``repro lint`` on the CLI).
"""

from pathlib import Path

from ..spec.registry import load_spec_tree
from .checks import run_checks
from .extract import (extract_mc, extract_protocols, extract_sim,
                      extract_state_usage)
from .findings import (Allowlist, Finding, LintReport,  # noqa: F401
                       Severity)
from .report import render_json, render_sarif, render_text  # noqa: F401

#: Default allowlist file name, looked up at the repo root (two levels
#: above the package: src/repro -> src -> repo).
ALLOWLIST_NAME = "lint_allowlist.txt"


def default_root():
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def default_allowlist_path(root):
    """``lint_allowlist.txt`` next to the source tree, if present."""
    candidate = Path(root).parent.parent / ALLOWLIST_NAME
    return candidate if candidate.exists() else None


def run_lint(root=None, allowlist_path=None, use_allowlist=True):
    """Extract the protocol graphs under ``root`` and run every check.

    ``root`` is the ``repro`` package directory (defaults to this
    installation's own sources — the self-audit mode the CI gate runs).
    ``allowlist_path`` overrides the allowlist location; ``use_allowlist``
    False ignores any allowlist (mutation tests use this to see raw
    findings).
    """
    root = Path(root) if root else default_root()
    sim = extract_sim(root)
    mc = extract_mc(root)
    states = extract_state_usage(root)
    protocols = extract_protocols(root)
    specs = load_spec_tree(root)
    findings = run_checks(sim, mc, states, protocols, specs)

    allowlist = None
    if use_allowlist:
        if allowlist_path is None:
            allowlist_path = default_allowlist_path(root)
        if allowlist_path is not None:
            allowlist = Allowlist.load(allowlist_path)

    kept, allowlisted = [], []
    for finding in findings:
        if allowlist is not None and allowlist.match(finding):
            allowlisted.append(finding)
        else:
            kept.append(finding)
    stale = allowlist.stale_entries() if allowlist is not None else []
    for entry in stale:
        kept.append(Finding(
            check_id="ALW001", severity=Severity.WARNING,
            fingerprint=entry.key, side="both",
            message="allowlist entry %r matched no finding this run — "
                    "remove it (justification was: %s)"
                    % (entry.key, entry.reason),
            file=str(allowlist.path) if allowlist else None,
            line=entry.line))

    return LintReport(
        findings=kept, allowlisted=allowlisted, stale_allowlist=stale,
        root=str(root),
        allowlist_path=str(allowlist.path) if allowlist else None,
        stats={
            "sim_messages": len(sim.messages),
            "sim_handled": len(sim.handlers),
            "sim_funcs": len(sim.funcs),
            "mc_messages": len(mc.messages),
            "mc_handled": len(mc.handlers),
            "state_enums": len(states),
            # Which arena protocols the conformance machinery covers and
            # how: an mc twin gets the full CON diff (hand-written for
            # adaptive, spec-generated for mesi); spec-only protocols get
            # the SPC analyses; a legacy tree with no specs is skipped.
            "protocols": {
                name: _protocol_status(decl.mc_twin, name in specs)
                for name, decl in protocols.items()
            },
            # Whether the CON diff ran against the guarded-action specs
            # or fell back to the legacy name-map heuristic.
            "conformance": {
                "source": "spec" if specs else "heuristic",
                "specs": sorted(specs),
            },
        })


def _protocol_status(mc_twin, has_spec):
    if mc_twin == "spec":
        return "conformance-checked (generated mc twin)"
    if mc_twin:
        return "conformance-checked (mc twin)"
    if has_spec:
        return "spec-checked (no mc twin)"
    return "conformance-skipped (no mc twin)"
