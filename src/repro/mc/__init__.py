"""Explicit-state model checking of the protocol (the paper's §2.5)."""

from .engine import CheckResult, ModelChecker, StateSpaceExceeded
from .invariants import (
    ALL_INVARIANTS,
    delegation_wellformed,
    directory_consistency,
    single_writer,
    value_coherence,
)
from .model import HOME, ProtocolModel, initial_state

__all__ = [
    "CheckResult",
    "ModelChecker",
    "StateSpaceExceeded",
    "ALL_INVARIANTS",
    "delegation_wellformed",
    "directory_consistency",
    "single_writer",
    "value_coherence",
    "HOME",
    "ProtocolModel",
    "initial_state",
]
