"""Model of the coherence protocol for exhaustive checking (paper §2.5).

The model mirrors the simulator's protocol semantics on a deliberately
small configuration — one cache line, a handful of nodes, home at node 0 —
the same methodology as the paper's extended-DASH Murphi model:

* the base directory write-invalidate protocol (GETS/GETX, interventions,
  invalidation+ack, writebacks, NACK/retry, MESI E-grant on read);
* directory delegation: DELEGATE doubling as the exclusive reply,
  forwarding + HOME_CHANGED hints, stale-hint NACK_NOT_HOME bounces,
  voluntary undelegation (flush/capacity) and home-initiated recall with
  its NACK(gone/busy) races;
* speculative updates: nondeterministically timed delayed intervention,
  pushes landing in consumer RACs, update-satisfied reads.

Nondeterminism replaces timing: the delegation decision, the intervention
firing point, message delivery interleaving and every CPU's next operation
are all explored exhaustively.  The network preserves order *per (src,
dst) channel* but interleaves channels arbitrarily — exactly the ordering
the fabric provides (constant per-pair latency + FIFO ingress port), and
an ordering the protocol genuinely relies on: under fully unordered
delivery a stale UPDATE could legally overtake a later INV from the same
producer and resurrect an invalidated copy (the checker finds that
counterexample if the channels are made unordered; see
tests/test_mc_protocol.py).

Data values live in a small symbolic domain: each committed write installs
the smallest value not currently live anywhere in the state (freshness is
all that matters — the protocol never computes on data), and the
value-coherence invariant compares copies against ``cur`` in quiescent
states.  Because values are only ever compared for equality, states that
differ by a renaming of values are behaviourally identical; the
:meth:`ProtocolModel.canonical` map exploits that symmetry (Murphi-style
scalarset reduction) to collapse the visited set by an order of magnitude.

State layout (all tuples, hashable)::

    (cur, caches, racs, cpus, home, deleg, hints, net)

    caches : per node (state, value), state in "ISEM"
    racs   : per node None | (value, pinned)
    cpus   : per node None | ("R", raced) | ("W", granted, needed, got)
    home   : (state, sharers, owner, memval, busy)
             state in "U","S","E","DELE" (owner doubles as delegate in DELE)
             busy None | (kind, requester, extra)
    deleg  : None | (node, (state, sharers, owner, value, busy, armed,
             pending_update_acks, deferred_undelegate))
    hints  : per node None | node
    net    : sorted tuple of ((src, dst), (msg, ...)) FIFO channels,
             msg = (mtype, src, dst, payload-tuple)
"""

from ..common.errors import ConfigError

HOME = 0

#: Size of the symbolic data-value domain.  Values are only compared for
#: equality; 8 comfortably exceeds the maximum number of simultaneously
#: live distinct values (current + stale copies + in-flight data).
VALUE_DOMAIN = 8

#: For each data-bearing message type, the index of the value slot in its
#: payload tuple (used by freshness scanning and canonicalisation).
_MSG_VALUE_POS = {
    "DATA_S": 0, "DATA_E": 0, "SH_WB": 0, "SH_RESP": 0, "EX_RESP": 0,
    "WB": 0, "UPDATE": 0, "DELEGATE": 1, "UNDELE": 1,
}

# -- state constructors -------------------------------------------------------


def initial_state(num_nodes):
    return (
        0,
        tuple(("I", 0) for _ in range(num_nodes)),
        tuple(None for _ in range(num_nodes)),
        tuple(None for _ in range(num_nodes)),
        ("U", frozenset(), None, 0, None),
        None,
        tuple(None for _ in range(num_nodes)),
        tuple(),
    )


def _tup_set(tup, index, value):
    return tup[:index] + (value,) + tup[index + 1:]


def _net_add(net, *msgs):
    """Append messages to their (src, dst) FIFO channels."""
    channels = {pair: list(queue) for pair, queue in net}
    for msg in msgs:
        channels.setdefault((msg[1], msg[2]), []).append(msg)
    return tuple(sorted((pair, tuple(queue))
                        for pair, queue in channels.items()))


def _net_add_unique(net, msg):
    """Add ``msg`` unless an identical copy is already queued.

    Used only for idempotent hint messages (HOME_CHANGED): a retry loop can
    legally emit unboundedly many identical hints while an UNDELE is in
    flight, and delivering N of them is behaviourally identical to
    delivering one — deduplication keeps the state space finite without
    losing any distinct behaviour.
    """
    pair = (msg[1], msg[2])
    for queue_pair, queue in net:
        if queue_pair == pair and msg in queue:
            return net
    return _net_add(net, msg)


def _net_pop_msg(net, pair, msg):
    """Remove one specific message from a channel (the head under FIFO)."""
    channels = {p: list(queue) for p, queue in net}
    channels[pair].remove(msg)
    if not channels[pair]:
        del channels[pair]
    return tuple(sorted((p, tuple(queue))
                        for p, queue in channels.items()))


class ProtocolModel:
    """Rule factory for the delegation/update protocol model."""

    def __init__(self, num_nodes=3, writers=(1,), readers=(2,),
                 enable_delegation=True, enable_updates=True,
                 allow_evictions=True, ordered_channels=True):
        if num_nodes < 2:
            raise ConfigError("model needs at least home + one other node")
        if HOME in writers:
            raise ConfigError(
                "the model exercises remote producers; home writes are "
                "covered by the simulator's online checks")
        for node in tuple(writers) + tuple(readers):
            if not 0 <= node < num_nodes:
                raise ConfigError("node %r out of range" % node)
        self.num_nodes = num_nodes
        self.writers = tuple(writers)
        self.readers = tuple(readers)
        self.enable_delegation = enable_delegation
        self.enable_updates = enable_updates and enable_delegation
        self.allow_evictions = allow_evictions
        # ordered_channels=False removes the fabric's per-pair FIFO
        # guarantee; the checker then finds the stale-UPDATE-overtakes-INV
        # counterexample, demonstrating the protocol's ordering assumption.
        self.ordered_channels = ordered_channels

    # -- public API ------------------------------------------------------------

    def initial_states(self):
        return [initial_state(self.num_nodes)]

    def rules(self):
        rules = [self.rule_cpu_read, self.rule_cpu_write, self.rule_deliver]
        if self.allow_evictions:
            rules.append(self.rule_evict)
            rules.append(self.rule_rac_evict)
        if self.enable_delegation:
            rules.append(self.rule_voluntary_undelegate)
        if self.enable_updates:
            rules.append(self.rule_intervention_fire)
        return rules

    def quiescent(self, state):
        _cur, _caches, _racs, cpus, _home, _deleg, _hints, net = state
        return not net and all(cpu is None for cpu in cpus)

    # -- helpers -----------------------------------------------------------------

    def _target_of(self, state, node):
        """Where ``node`` sends a request: itself if delegated here, the
        hinted delegate, or the home (mirrors Hub._resolve_target)."""
        deleg, hints = state[5], state[6]
        if deleg is not None and deleg[0] == node:
            return node
        if hints[node] is not None:
            return hints[node]
        return HOME

    def _value_fields(self, state):
        """Yield every live data value in a fixed traversal order."""
        cur, caches, racs, _cpus, home, deleg, _hints, net = state
        yield cur
        for cstate, value in caches:
            if cstate != "I":
                yield value
        for rac in racs:
            if rac is not None:
                yield rac[0]
        yield home[3]  # memval
        if deleg is not None:
            yield deleg[1][3]
        for _pair, queue in net:
            for msg in queue:
                pos = _MSG_VALUE_POS.get(msg[0])
                if pos is not None:
                    yield msg[3][pos]

    def _fresh_value(self, state):
        """Smallest domain value not live anywhere (a brand-new datum)."""
        used = set(self._value_fields(state))
        for candidate in range(VALUE_DOMAIN):
            if candidate not in used:
                return candidate
        raise AssertionError("VALUE_DOMAIN exhausted; raise it")

    def canonical(self, state):
        """Symmetry-class representative: rename values by first appearance.

        Sound because the protocol treats values as opaque tokens compared
        only for equality; used as the visited-set key by the engine."""
        rename = {}
        for value in self._value_fields(state):
            if value not in rename:
                rename[value] = len(rename)

        def rmap(value):
            return rename.setdefault(value, len(rename))

        cur, caches, racs, cpus, home, deleg, hints, net = state
        caches = tuple((st, rmap(v) if st != "I" else 0) for st, v in caches)
        racs = tuple(None if r is None else (rmap(r[0]), r[1]) for r in racs)
        home = (home[0], home[1], home[2], rmap(home[3]), home[4])
        if deleg is not None:
            d = deleg[1]
            deleg = (deleg[0], (d[0], d[1], d[2], rmap(d[3]), d[4], d[5],
                                d[6], d[7]))
        new_net = []
        for pair, queue in net:
            new_queue = []
            for msg in queue:
                pos = _MSG_VALUE_POS.get(msg[0])
                if pos is None:
                    new_queue.append(msg)
                else:
                    payload = list(msg[3])
                    payload[pos] = rmap(payload[pos])
                    new_queue.append((msg[0], msg[1], msg[2], tuple(payload)))
            new_net.append((pair, tuple(new_queue)))
        return (rmap(cur), caches, racs, cpus, home, deleg, hints,
                tuple(new_net))

    def _commit_write(self, state, node):
        """All acks + grant collected: the store becomes globally visible."""
        cur, caches, racs, cpus, home, deleg, hints, net = state
        new_value = self._fresh_value(state)
        caches = _tup_set(caches, node, ("M", new_value))
        cpus = _tup_set(cpus, node, None)
        # A stale unpinned RAC copy of a line we now own must go.
        if racs[node] is not None and not racs[node][1]:
            racs = _tup_set(racs, node, None)
        if deleg is not None and deleg[0] == node:
            dst, dsh, downer, dval, _busy, _armed, pend, deferred = deleg[1]
            deleg = (node, (dst, dsh, downer, dval, False,
                            self.enable_updates, pend, deferred))
            state = (new_value, caches, racs, cpus, home, deleg, hints, net)
            if deferred and pend == 0:
                return self._undelegate(state, node)
            return state
        return (new_value, caches, racs, cpus, home, deleg, hints, net)

    def _maybe_commit(self, state, node):
        cpu = state[3][node]
        if cpu is not None and cpu[0] == "W" and cpu[1] and cpu[3] >= cpu[2]:
            return self._commit_write(state, node)
        return state

    # -- CPU rules ------------------------------------------------------------

    def rule_cpu_read(self, state):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        for node in self.readers:
            if cpus[node] is not None or caches[node][0] != "I":
                continue
            if racs[node] is not None:
                continue  # a RAC hit completes locally: no state change
            target = self._target_of(state, node)
            if deleg is not None and deleg[0] == node:
                continue  # delegated lines always hit the pinned RAC entry
            new_cpus = _tup_set(cpus, node, ("R", False))
            new_net = _net_add(net, ("GETS", node, target, (node,)))
            yield ("read_%d" % node,
                   (cur, caches, racs, new_cpus, home, deleg, hints, new_net))

    def rule_cpu_write(self, state):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        for node in self.writers:
            if cpus[node] is not None or caches[node][0] in "EM":
                continue
            has_copy = caches[node][0] == "S"
            target = self._target_of(state, node)
            new_cpus = _tup_set(cpus, node, ("W", False, None, 0))
            new_net = _net_add(net, ("GETX", node, target, (node, has_copy)))
            yield ("write_%d" % node,
                   (cur, caches, racs, new_cpus, home, deleg, hints, new_net))

    def rule_evict(self, state):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        for node in range(self.num_nodes):
            cstate, cvalue = caches[node]
            if cstate == "I" or cpus[node] is not None:
                continue
            if deleg is not None and deleg[0] == node:
                # Flushing a delegated line forces undelegation (reason 2).
                if deleg[1][4]:  # entry busy: the implementation cannot be
                    continue     # mid-transaction here either
                yield ("evict_flush_%d" % node,
                       self._undelegate(state, node))
                continue
            new_caches = _tup_set(caches, node, ("I", 0))
            if cstate == "S":
                new_racs = racs
                if node != HOME:
                    new_racs = _tup_set(racs, node, (cvalue, False))
                yield ("evict_s_%d" % node,
                       (cur, new_caches, new_racs, cpus, home, deleg, hints,
                        net))
            elif cstate == "E":
                new_net = _net_add(net, ("EVC", node, HOME, ()))
                yield ("evict_e_%d" % node,
                       (cur, new_caches, racs, cpus, home, deleg, hints,
                        new_net))
            else:  # M
                new_net = _net_add(net, ("WB", node, HOME, (cvalue,)))
                yield ("evict_m_%d" % node,
                       (cur, new_caches, racs, cpus, home, deleg, hints,
                        new_net))

    def rule_rac_evict(self, state):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        for node in range(self.num_nodes):
            entry = racs[node]
            if entry is None or entry[1]:  # absent or pinned
                continue
            new_racs = _tup_set(racs, node, None)
            yield ("rac_evict_%d" % node,
                   (cur, caches, new_racs, cpus, home, deleg, hints, net))

    # -- producer rules -----------------------------------------------------------

    def rule_intervention_fire(self, state):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        if deleg is None:
            return
        node, (dstate, dsharers, downer, _dval, dbusy, armed, pend,
               deferred) = deleg
        if not armed or dbusy or dstate != "E" or downer != node:
            return
        if caches[node][0] not in "EM":
            return
        value = caches[node][1]
        new_caches = _tup_set(caches, node, ("S", value))
        new_racs = _tup_set(racs, node, (value, True))
        consumers = dsharers - {node}
        new_deleg = (node, ("S", consumers | {node}, None, value, False,
                            False, pend + len(consumers), deferred))
        new_net = net
        for consumer in sorted(consumers):
            new_net = _net_add(new_net, ("UPDATE", node, consumer, (value,)))
        yield ("intervene_%d" % node,
               (cur, new_caches, new_racs, cpus, home, new_deleg, hints,
                new_net))
        if consumers:
            # The selective-update filter may prune any consumer (§2.4.2
            # refinement); verify the push-to-nobody extreme — updates are
            # a pure optimisation, so withholding them must stay safe.
            pruned_deleg = (node, ("S", consumers | {node}, None, value,
                                   False, False, pend, deferred))
            yield ("intervene_pruned_%d" % node,
                   (cur, new_caches, new_racs, cpus, home, pruned_deleg,
                    hints, net))

    def rule_voluntary_undelegate(self, state):
        deleg, cpus = state[5], state[3]
        if deleg is None:
            return
        node, entry = deleg
        if entry[4] or cpus[node] is not None or entry[7]:
            return
        yield ("undelegate_%d" % node, self._undelegate(state, node))

    def _undelegate(self, state, node):
        """Flush the producer's local state and emit UNDELE (§2.3.3), or
        mark it deferred while pushed updates are unacknowledged."""
        cur, caches, racs, cpus, home, deleg, hints, net = state
        _node, (dstate, dsharers, _downer, dvalue, _dbusy, _armed, pend,
                _deferred) = deleg
        if pend > 0:
            entry = (dstate, dsharers, _downer, dvalue, _dbusy, _armed,
                     pend, True)
            return (cur, caches, racs, cpus, home, (node, entry), hints, net)
        cstate, cvalue = caches[node]
        rac = racs[node]
        if cstate == "M":
            value = cvalue
        elif rac is not None:
            value = rac[0]
        elif cstate != "I":
            value = cvalue
        else:
            value = dvalue
        if dstate == "E":
            snap = ("U", frozenset(), None)
        else:
            remaining = dsharers - {node}
            snap = ("S" if remaining else "U", remaining, None)
        caches = _tup_set(caches, node, ("I", 0))
        racs = _tup_set(racs, node, None)
        net = _net_add(net, ("UNDELE", node, HOME, (snap, value)))
        return (cur, caches, racs, cpus, home, None, hints, net)

    # -- message delivery ----------------------------------------------------------

    def rule_deliver(self, state):
        net = state[7]
        for pair, queue in net:
            if self.ordered_channels:
                deliverable = (queue[0],)  # per-channel FIFO: head only
            else:
                deliverable = queue
            for msg in deliverable:
                base = (state[0], state[1], state[2], state[3], state[4],
                        state[5], state[6], _net_pop_msg(net, pair, msg))
                handler = getattr(self, "_on_" + msg[0].lower())
                for label, nxt in handler(base, msg):
                    yield (label, nxt)

    # Each handler receives the state with the message already consumed.

    def _on_gets(self, state, msg):
        _mtype, src, dst, (requester,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        if deleg is not None and deleg[0] == dst:
            yield from self._acting_gets(state, requester)
            return
        if dst != HOME:
            new_net = _net_add(net, ("NACKNH", dst, requester, ()))
            yield ("gets_stale_hint",
                   (cur, caches, racs, cpus, home, deleg, hints, new_net))
            return
        hstate, sharers, owner, memval, busy = home
        if busy is not None:
            yield ("gets_busy_nack", self._nack(state, requester))
            return
        if hstate == "DELE":
            if requester == owner:  # owner slot holds the delegate
                yield ("gets_dele_self_nack", self._nack(state, requester))
                return
            new_net = _net_add(net, ("GETS", HOME, owner, (requester,)))
            new_net = _net_add_unique(new_net,
                                      ("HC", HOME, requester, (owner,)))
            yield ("gets_forward",
                   (cur, caches, racs, cpus, home, deleg, hints, new_net))
            return
        if hstate == "U":
            new_home = ("E", frozenset(), requester, memval, None)
            new_net = _net_add(net, ("DATA_E", HOME, requester, (memval, 0)))
            yield ("gets_unowned",
                   (cur, caches, racs, cpus, new_home, deleg, hints, new_net))
            return
        if hstate == "S":
            new_home = ("S", sharers | {requester}, None, memval, None)
            new_net = _net_add(net, ("DATA_S", HOME, requester,
                                     (memval, False)))
            yield ("gets_shared",
                   (cur, caches, racs, cpus, new_home, deleg, hints, new_net))
            return
        # EXCL
        if owner == requester:
            yield ("gets_own_wb_race", self._nack(state, requester))
            return
        new_home = (hstate, sharers, owner, memval,
                    ("int_s", requester, False))
        new_net = _net_add(net, ("INT", HOME, owner, ("s", requester)))
        yield ("gets_intervene",
               (cur, caches, racs, cpus, new_home, deleg, hints, new_net))

    def _acting_gets(self, state, requester):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        node, (dstate, dsharers, downer, dvalue, dbusy, armed, pend,
               deferred) = deleg
        if dbusy:
            yield ("acting_gets_busy", self._nack(state, requester))
            return
        if dstate == "E":
            if caches[node][0] in "EM":
                value = caches[node][1]
                new_caches = _tup_set(caches, node, ("S", value))
                new_racs = _tup_set(racs, node, (value, True))
            else:
                value = racs[node][0]
                new_caches, new_racs = caches, racs
            new_deleg = (node, ("S", frozenset({node, requester}), None,
                                value, False, False, pend, deferred))
            new_net = _net_add(net, ("DATA_S", node, requester,
                                     (value, True)))
            yield ("acting_gets_excl",
                   (cur, new_caches, new_racs, cpus, home, new_deleg, hints,
                    new_net))
            return
        value = racs[node][0] if racs[node] is not None else dvalue
        new_deleg = (node, (dstate, dsharers | {requester}, downer, dvalue,
                            False, armed, pend, deferred))
        new_net = _net_add(net, ("DATA_S", node, requester, (value, True)))
        yield ("acting_gets_shared",
               (cur, caches, racs, cpus, home, new_deleg, hints, new_net))

    def _on_getx(self, state, msg):
        _mtype, src, dst, (requester, has_copy) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        if deleg is not None and deleg[0] == dst:
            yield from self._acting_getx(state, requester)
            return
        if dst != HOME:
            new_net = _net_add(net, ("NACKNH", dst, requester, ()))
            yield ("getx_stale_hint",
                   (cur, caches, racs, cpus, home, deleg, hints, new_net))
            return
        hstate, sharers, owner, memval, busy = home
        if busy is not None:
            yield ("getx_busy_nack", self._nack(state, requester))
            return
        if hstate == "DELE":
            if requester == owner:
                yield ("getx_dele_self_nack", self._nack(state, requester))
                return
            new_home = (hstate, sharers, owner, memval,
                        ("undele", requester, (requester, has_copy)))
            new_net = _net_add(net, ("UNDELE_REQ", HOME, owner, ()))
            yield ("getx_recall",
                   (cur, caches, racs, cpus, new_home, deleg, hints, new_net))
            return
        if hstate == "U":
            new_home = ("E", frozenset(), requester, memval, None)
            new_net = _net_add(net, ("DATA_E", HOME, requester, (memval, 0)))
            yield ("getx_unowned",
                   (cur, caches, racs, cpus, new_home, deleg, hints, new_net))
            if self.enable_delegation and requester != HOME:
                yield ("getx_delegate_u",
                       self._delegate(state, requester, frozenset(), 0))
            return
        if hstate == "S":
            targets = sharers - {requester}
            upgrade = requester in sharers and has_copy
            inv_net = net
            for target in sorted(targets):
                inv_net = _net_add(inv_net, ("INV", HOME, target,
                                             (requester,)))
            new_home = ("E", targets, requester, memval, None)
            if upgrade:
                grant = ("ACK_X", HOME, requester, (len(targets),))
            else:
                grant = ("DATA_E", HOME, requester, (memval, len(targets)))
            yield ("getx_shared",
                   (cur, caches, racs, cpus, new_home, deleg, hints,
                    _net_add(inv_net, grant)))
            if self.enable_delegation and requester != HOME:
                yield ("getx_delegate_s",
                       self._delegate(
                           (cur, caches, racs, cpus, home, deleg, hints,
                            inv_net),
                           requester, targets, len(targets)))
            return
        # EXCL
        if owner == requester:
            yield ("getx_own_wb_race", self._nack(state, requester))
            return
        new_home = (hstate, sharers, owner, memval,
                    ("int_x", requester, False))
        new_net = _net_add(net, ("INT", HOME, owner, ("x", requester)))
        yield ("getx_intervene",
               (cur, caches, racs, cpus, new_home, deleg, hints, new_net))

    def _delegate(self, state, producer, update_set, n_acks):
        """Home side of Figure 4a: DELE state + DELEGATE-as-reply."""
        cur, caches, racs, cpus, home, deleg, hints, net = state
        memval = home[3]
        new_home = ("DELE", frozenset(), producer, memval, None)
        snap = ("E", frozenset(update_set), producer)
        new_net = _net_add(net, ("DELEGATE", HOME, producer,
                                 (snap, memval, n_acks)))
        return (cur, caches, racs, cpus, new_home, deleg, hints, new_net)

    def _acting_getx(self, state, requester):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        node, (dstate, dsharers, downer, dvalue, dbusy, armed, pend,
               deferred) = deleg
        if dbusy:
            yield ("acting_getx_busy", self._nack(state, requester))
            return
        if requester != node:
            if pend > 0:
                # Updates still draining: plain NACK; mark deferred.
                entry = (dstate, dsharers, downer, dvalue, dbusy, armed,
                         pend, True)
                nacked = (cur, caches, racs, cpus, home, (node, entry),
                          hints, _net_add(net, ("NACK", node, requester,
                                                ())))
                yield ("acting_getx_remote_deferred", nacked)
                return
            # Remote exclusive request: bounce and hand the directory back.
            bounced = (cur, caches, racs, cpus, home, deleg, hints,
                       _net_add(net, ("NACKNH", node, requester, ())))
            yield ("acting_getx_remote", self._undelegate(bounced, node))
            return
        targets = dsharers - {node}
        inv_net = net
        for target in sorted(targets):
            inv_net = _net_add(inv_net, ("INV", node, target, (node,)))
        new_deleg = (node, ("E", targets, node, dvalue, True, False,
                            pend, deferred))
        new_cpus = _tup_set(cpus, node, ("W", True, len(targets), 0))
        nxt = (cur, caches, racs, new_cpus, home, new_deleg, hints, inv_net)
        yield ("acting_getx_local", self._maybe_commit(nxt, node))

    def _on_inv(self, state, msg):
        _mtype, _src, dst, (collector,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        cpu = cpus[dst]
        if cpu is not None and cpu[0] == "R":
            cpus = _tup_set(cpus, dst, ("R", True))  # raced: drop after use
        caches = _tup_set(caches, dst, ("I", 0))
        if racs[dst] is not None and not racs[dst][1]:
            racs = _tup_set(racs, dst, None)
        net = _net_add(net, ("INV_ACK", dst, collector, ()))
        yield ("inv_%d" % dst,
               (cur, caches, racs, cpus, home, deleg, hints, net))

    def _on_inv_ack(self, state, msg):
        _mtype, _src, dst, _payload = msg
        cpu = state[3][dst]
        if cpu is None or cpu[0] != "W":
            return  # ack for a transaction torn down by NACK (cannot happen)
        kind, granted, needed, got = cpu
        new_cpus = _tup_set(state[3], dst, (kind, granted, needed, got + 1))
        nxt = state[:3] + (new_cpus,) + state[4:]
        yield ("inv_ack_%d" % dst, self._maybe_commit(nxt, dst))

    def _on_data_s(self, state, msg):
        _mtype, src, dst, (value, acting) = msg
        yield from self._deliver_shared_data(state, src, dst, value, acting,
                                             "data_s")

    def _on_sh_resp(self, state, msg):
        _mtype, src, dst, (value,) = msg
        yield from self._deliver_shared_data(state, src, dst, value, False,
                                             "sh_resp")

    def _deliver_shared_data(self, state, src, dst, value, acting, label):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        cpu = cpus[dst]
        if acting:
            hints = _tup_set(hints, dst, src)
        if cpu is None or cpu[0] != "R":
            yield ("%s_stale_%d" % (label, dst),
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        raced = cpu[1]
        cpus = _tup_set(cpus, dst, None)
        if not raced:
            caches = _tup_set(caches, dst, ("S", value))
        yield ("%s_%d" % (label, dst),
               (cur, caches, racs, cpus, home, deleg, hints, net))

    def _on_data_e(self, state, msg):
        _mtype, src, dst, (value, n_acks) = msg
        yield from self._deliver_excl_data(state, dst, value, n_acks,
                                           "data_e")

    def _on_ex_resp(self, state, msg):
        _mtype, src, dst, (value,) = msg
        yield from self._deliver_excl_data(state, dst, value, 0, "ex_resp")

    def _deliver_excl_data(self, state, dst, value, n_acks, label):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        cpu = cpus[dst]
        if cpu is None:
            yield ("%s_stale_%d" % (label, dst), state)
            return
        if cpu[0] == "R":
            raced = cpu[1]
            cpus = _tup_set(cpus, dst, None)
            if raced:
                # Dropping an exclusively granted line is a clean eviction
                # the directory must hear about.
                net = _net_add(net, ("EVC", dst, HOME, ()))
            else:
                caches = _tup_set(caches, dst, ("E", value))
            yield ("%s_read_%d" % (label, dst),
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        _kind, _granted, _needed, got = cpu
        # The line is installed only at commit (all acks collected), exactly
        # as the implementation fills the L2 at miss completion.
        cpus = _tup_set(cpus, dst, ("W", True, n_acks, got))
        nxt = (cur, caches, racs, cpus, home, deleg, hints, net)
        yield ("%s_write_%d" % (label, dst), self._maybe_commit(nxt, dst))

    def _on_ack_x(self, state, msg):
        _mtype, _src, dst, (n_acks,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        cpu = cpus[dst]
        if cpu is None or cpu[0] != "W":
            yield ("ack_x_stale_%d" % dst, state)
            return
        cpus = _tup_set(cpus, dst, ("W", True, n_acks, cpu[3]))
        nxt = (cur, caches, racs, cpus, home, deleg, hints, net)
        yield ("ack_x_%d" % dst, self._maybe_commit(nxt, dst))

    def _on_int(self, state, msg):
        _mtype, src, dst, (mode, requester) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        if cpus[dst] is not None:
            net = _net_add(net, ("NACKI", dst, HOME, ("busy", mode)))
            yield ("int_busy_%d" % dst,
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        cstate, cvalue = caches[dst]
        if cstate not in "EM":
            net = _net_add(net, ("NACKI", dst, HOME, ("no_copy", mode)))
            yield ("int_no_copy_%d" % dst,
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        if mode == "s":
            caches = _tup_set(caches, dst, ("S", cvalue))
            net = _net_add(net,
                           ("SH_WB", dst, HOME, (cvalue,)),
                           ("SH_RESP", dst, requester, (cvalue,)))
        else:
            caches = _tup_set(caches, dst, ("I", 0))
            net = _net_add(net,
                           ("EX_RESP", dst, requester, (cvalue,)),
                           ("XFER", dst, HOME, (requester,)))
        yield ("int_%s_%d" % (mode, dst),
               (cur, caches, racs, cpus, home, deleg, hints, net))

    def _on_nacki(self, state, msg):
        _mtype, src, _dst, (reason, mode) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hstate, sharers, owner, memval, busy = home
        if busy is None or busy[0] not in ("int_s", "int_x", "wb"):
            yield ("nacki_stale", state)
            return
        if reason == "busy":
            net = _net_add(net, ("INT", HOME, owner, (mode, busy[1])))
            yield ("nacki_retry",
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        # no_copy: the owner's eviction notice is in flight
        if busy[0] in ("int_s", "int_x") and busy[2]:
            yield ("nacki_resolved", self._resolve_wb_race(state))
        else:
            kind = busy[0]
            req = busy[1]
            buffered = ("GETS", req) if kind == "int_s" else ("GETX", req)
            new_home = (hstate, sharers, owner, memval,
                        ("wb", req, buffered))
            yield ("nacki_wait_wb",
                   (cur, caches, racs, cpus, new_home, deleg, hints, net))

    def _resolve_wb_race(self, state):
        """Data arrived while a requester waited: reset to UNOWNED and
        replay the buffered request (mirrors HomeMixin._resolve_wb_race)."""
        cur, caches, racs, cpus, home, deleg, hints, net = state
        _hstate, _sharers, _owner, memval, busy = home
        kind, requester, _extra = busy
        if kind == "int_s":
            replay = ("GETS", requester, HOME, (requester,))
        elif kind == "wb" and busy[2][0] == "GETS":
            replay = ("GETS", busy[2][1], HOME, (busy[2][1],))
        elif kind == "undele":
            raise AssertionError("undele busy cannot reach wb race")
        else:
            req = busy[2][1] if kind == "wb" else requester
            replay = ("GETX", req, HOME, (req, False))
        new_home = ("U", frozenset(), None, memval, None)
        return (cur, caches, racs, cpus, new_home, deleg, hints,
                _net_add(net, replay))

    def _on_sh_wb(self, state, msg):
        _mtype, src, _dst, (value,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hstate, sharers, owner, memval, busy = home
        if busy is None or busy[0] != "int_s":
            yield ("sh_wb_stale", state)
            return
        new_home = ("S", frozenset({owner, busy[1]}), None, value, None)
        yield ("sh_wb",
               (cur, caches, racs, cpus, new_home, deleg, hints, net))

    def _on_xfer(self, state, msg):
        _mtype, _src, _dst, (new_owner,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hstate, sharers, _owner, memval, busy = home
        if busy is None or busy[0] != "int_x":
            yield ("xfer_stale", state)
            return
        new_home = ("E", sharers, new_owner, memval, None)
        yield ("xfer",
               (cur, caches, racs, cpus, new_home, deleg, hints, net))

    def _on_wb(self, state, msg):
        _mtype, src, _dst, (value,) = msg
        yield from self._writeback(state, src, value, "wb")

    def _on_evc(self, state, msg):
        _mtype, src, _dst, _payload = msg
        yield from self._writeback(state, src, None, "evc")

    def _writeback(self, state, src, value, label):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hstate, sharers, owner, memval, busy = home
        if value is not None:
            memval = value
        home = (hstate, sharers, owner, memval, busy)
        state = (cur, caches, racs, cpus, home, deleg, hints, net)
        if busy is not None:
            if busy[0] == "wb":
                yield (label + "_resolves", self._resolve_wb_race(state))
                return
            if busy[0] in ("int_s", "int_x"):
                new_home = (hstate, sharers, owner, memval,
                            (busy[0], busy[1], True))
                yield (label + "_during_int",
                       (cur, caches, racs, cpus, new_home, deleg, hints,
                        net))
                return
            yield (label + "_stale", state)
            return
        if hstate == "E" and owner == src:
            new_home = ("U", sharers, None, memval, None)
            yield (label,
                   (cur, caches, racs, cpus, new_home, deleg, hints, net))
            return
        yield (label + "_stale", state)

    def _on_nack(self, state, msg):
        _mtype, _src, dst, _payload = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        cpu = cpus[dst]
        if cpu is None:
            yield ("nack_stale_%d" % dst, state)
            return
        target = self._target_of(state, dst)
        if cpu[0] == "R":
            net = _net_add(net, ("GETS", dst, target, (dst,)))
        else:
            has_copy = caches[dst][0] == "S"
            net = _net_add(net, ("GETX", dst, target, (dst, has_copy)))
        yield ("nack_retry_%d" % dst,
               (cur, caches, racs, cpus, home, deleg, hints, net))

    def _on_nacknh(self, state, msg):
        _mtype, _src, dst, _payload = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hints = _tup_set(hints, dst, None)
        state = (cur, caches, racs, cpus, home, deleg, hints, net)
        yield from self._on_nack(state, ("NACK", HOME, dst, ()))

    def _on_hc(self, state, msg):
        _mtype, _src, dst, (delegate,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hints = _tup_set(hints, dst, delegate)
        yield ("hc_%d" % dst,
               (cur, caches, racs, cpus, home, deleg, hints, net))

    def _on_delegate(self, state, msg):
        _mtype, _src, dst, (snap, value, n_acks) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        cpu = cpus[dst]
        if cpu is None or cpu[0] != "W":
            raise AssertionError("DELEGATE without an outstanding write")
        sstate, ssharers, sowner = snap
        # busy until the local write commits, exactly as the implementation
        # NACKs remote requests racing the delegation.
        new_deleg = (dst, (sstate, ssharers, sowner, value, True, False,
                           0, False))
        new_racs = _tup_set(racs, dst, (value, True))
        new_cpus = _tup_set(cpus, dst, ("W", True, n_acks, cpu[3]))
        nxt = (cur, caches, new_racs, new_cpus, home, new_deleg, hints, net)
        yield ("delegate_accept_%d" % dst, self._maybe_commit(nxt, dst))

    def _on_undele(self, state, msg):
        _mtype, _src, _dst, (snap, value) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hstate, _sharers, _owner, _memval, busy = home
        sstate, ssharers, sowner = snap
        new_home = (sstate, frozenset(ssharers), sowner, value, None)
        if busy is not None and busy[0] == "undele":
            requester, has_copy = busy[2]
            net = _net_add(net, ("GETX", requester, HOME,
                                 (requester, has_copy)))
        yield ("undele",
               (cur, caches, racs, cpus, new_home, deleg, hints, net))

    def _on_undele_req(self, state, msg):
        _mtype, _src, dst, _payload = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        if deleg is None or deleg[0] != dst:
            net = _net_add(net, ("NACKR", dst, HOME, ("gone",)))
            yield ("undele_req_gone",
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        if deleg[1][4] or cpus[dst] is not None or deleg[1][6] > 0:
            net = _net_add(net, ("NACKR", dst, HOME, ("busy",)))
            yield ("undele_req_busy",
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        yield ("undele_req_%d" % dst,
               self._undelegate(
                   (cur, caches, racs, cpus, home, deleg, hints, net), dst))

    def _on_nackr(self, state, msg):
        _mtype, _src, _dst, (reason,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        hstate, sharers, owner, memval, busy = home
        if busy is None or busy[0] != "undele" or hstate != "DELE":
            yield ("nackr_stale", state)
            return
        if reason == "gone":
            # A voluntary UNDELE is in flight and will resolve this.
            yield ("nackr_gone", state)
            return
        net = _net_add(net, ("UNDELE_REQ", HOME, owner, ()))
        yield ("nackr_retry",
               (cur, caches, racs, cpus, home, deleg, hints, net))

    def _on_update(self, state, msg):
        _mtype, src, dst, (value,) = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        net = _net_add(net, ("UPDATE_ACK", dst, src, ()))
        hints = _tup_set(hints, dst, src)
        cpu = cpus[dst]
        if cpu is not None and cpu[0] == "R":
            # An update meeting an outstanding read lands in the RAC only;
            # the in-flight reply retires the miss (retiring it here would
            # orphan that reply — a stale-data hazard the checker found).
            racs = _tup_set(racs, dst, (value, False))
            yield ("update_during_read_%d" % dst,
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        if caches[dst][0] != "I":
            yield ("update_stale_%d" % dst,
                   (cur, caches, racs, cpus, home, deleg, hints, net))
            return
        racs = _tup_set(racs, dst, (value, False))
        yield ("update_%d" % dst,
               (cur, caches, racs, cpus, home, deleg, hints, net))

    def _on_update_ack(self, state, msg):
        _mtype, _src, dst, _payload = msg
        cur, caches, racs, cpus, home, deleg, hints, net = state
        if deleg is None or deleg[0] != dst:
            yield ("update_ack_stale", state)
            return
        dstate, dsharers, downer, dvalue, dbusy, armed, pend, deferred = \
            deleg[1]
        pend = max(0, pend - 1)
        entry = (dstate, dsharers, downer, dvalue, dbusy, armed, pend,
                 deferred)
        nxt = (cur, caches, racs, cpus, home, (dst, entry), hints, net)
        if deferred and pend == 0 and not dbusy and cpus[dst] is None:
            yield ("update_ack_undelegates", self._undelegate(nxt, dst))
            return
        yield ("update_ack_%d" % dst, nxt)

    # -- misc ----------------------------------------------------------------------

    def _nack(self, state, requester):
        cur, caches, racs, cpus, home, deleg, hints, net = state
        return (cur, caches, racs, cpus, home, deleg, hints,
                _net_add(net, ("NACK", HOME, requester, ())))
