"""A small explicit-state model checker (the Murphi role in the paper).

The engine does what Murphi does for safety properties: exhaustive
breadth-first reachability over a finite state graph, checking every
invariant in every reachable state, detecting dead ends (non-quiescent
states with no enabled rule), and reconstructing a counterexample trace
when anything fails.

Models supply:

* ``initial_states`` — iterable of hashable states;
* ``rules`` — callables ``rule(state) -> iterable[(label, next_state)]``;
  a rule may yield any number of successors (nondeterminism);
* ``invariants`` — callables ``inv(state) -> bool``; ``False`` fails;
* ``quiescent`` — predicate marking states that are *allowed* to have no
  successors (everything idle, network empty).
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List

from ..common.errors import DeadlockError, InvariantViolation, ReproError


class StateSpaceExceeded(ReproError):
    """Exploration hit the state cap before exhausting the space."""


@dataclass
class CheckResult:
    """Outcome of a completed (exhaustive) exploration."""

    states_explored: int
    transitions: int
    max_depth: int
    rule_counts: Dict[str, int] = field(default_factory=dict)


class ModelChecker:
    """Breadth-first exhaustive reachability with invariant checking."""

    def __init__(self, initial_states, rules, invariants, quiescent=None,
                 max_states=2_000_000, track_traces=True, canonicalize=None):
        """``track_traces=False`` stores visited states as a set without
        parent pointers (Murphi-style memory economy): violations are still
        detected, but counterexample traces are unavailable.  Use it for
        large exhaustive sweeps after a trace-tracking run of a smaller
        configuration has been debugged.

        ``canonicalize`` maps a state to its symmetry-class representative
        (e.g. data-value renaming); the visited set then stores one state
        per class.  Invariants always run on the *real* state before
        canonicalisation."""
        self.initial_states = list(initial_states)
        self.rules = list(rules)
        self.invariants = list(invariants)
        self.quiescent = quiescent or (lambda state: True)
        self.max_states = max_states
        self.track_traces = track_traces
        self.canonicalize = canonicalize or (lambda state: state)
        self._parents = {}

    def run(self):
        """Explore everything reachable; raises on any violation."""
        frontier = deque()
        self._parents = {}
        visited = self._parents if self.track_traces else set()
        rule_counts = {}
        transitions = 0
        for state in self.initial_states:
            key = self.canonicalize(state)
            if key not in visited:
                if self.track_traces:
                    self._parents[key] = None
                else:
                    visited.add(key)
                self._check_invariants(state)
                frontier.append((state, 0))
        max_depth = 0
        while frontier:
            state, state_depth = frontier.popleft()
            successors = 0
            for rule in self.rules:
                for label, nxt in rule(state):
                    transitions += 1
                    successors += 1
                    rule_counts[label] = rule_counts.get(label, 0) + 1
                    key = self.canonicalize(nxt)
                    if key in visited:
                        continue
                    if len(visited) >= self.max_states:
                        raise StateSpaceExceeded(
                            "more than %d states reachable" % self.max_states)
                    if self.track_traces:
                        self._parents[key] = (self.canonicalize(state), label)
                    else:
                        visited.add(key)
                    max_depth = max(max_depth, state_depth + 1)
                    self._check_invariants(nxt)
                    frontier.append((nxt, state_depth + 1))
            if successors == 0 and not self.quiescent(state):
                raise DeadlockError(state, self.trace(self.canonicalize(state)))
        return CheckResult(states_explored=len(visited),
                          transitions=transitions, max_depth=max_depth,
                          rule_counts=rule_counts)

    def _check_invariants(self, state):
        for invariant in self.invariants:
            if not invariant(state):
                raise InvariantViolation(
                    getattr(invariant, "__name__", repr(invariant)),
                    state, self.trace(self.canonicalize(state)))

    def trace(self, state) -> List[str]:
        """Rule labels from an initial state to ``state`` (counterexample)."""
        labels = []
        while True:
            parent = self._parents.get(state)
            if parent is None:
                break
            state, label = parent
            labels.append(label)
        return list(reversed(labels))
