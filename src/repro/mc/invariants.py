"""Safety invariants checked in every reachable state (paper §2.5).

The paper verifies the Murphi DASH model's invariants, highlighting
"single writer exists" and "consistency within the directory"; we check
those plus value coherence in quiescent states.

Invariant subtleties mirror real protocol behaviour:

* A node's own pinned RAC entry may coexist with (and be staler than) its
  own M/E cache copy — same node, so SWMR is about *other* nodes.
* The directory's sharing vector is a *superset* of actual copies (silent
  S evictions, the preserved update set), never a subset — checked only
  outside transient BUSY windows.
* Value coherence is a quiescent-state property: with messages in flight
  a just-written value is still propagating.
"""

HOME = 0


def _unpack(state):
    return state  # (cur, caches, racs, cpus, home, deleg, hints, net)


def single_writer(state):
    """At most one node holds a writable copy, and while one does, no other
    node holds any readable copy (cache S or RAC entry)."""
    _cur, caches, racs, _cpus, _home, _deleg, _hints, _net = _unpack(state)
    owners = [n for n, (st, _v) in enumerate(caches) if st in "EM"]
    if len(owners) > 1:
        return False
    if not owners:
        return True
    owner = owners[0]
    for node, (st, _v) in enumerate(caches):
        if node != owner and st != "I":
            return False
    for node, rac in enumerate(racs):
        if node != owner and rac is not None:
            return False
    return True


def directory_consistency(state):
    """Outside BUSY windows, the governing directory entry must cover every
    readable copy and agree with the actual owner."""
    _cur, caches, racs, _cpus, home, deleg, _hints, _net = _unpack(state)
    hstate, hsharers, howner, _memval, busy = home
    if busy is not None:
        return True  # transient window
    if deleg is not None:
        dnode, (dstate, dsharers, downer, _dv, dbusy, _armed, _pend,
                _deferred) = deleg
        if dbusy:
            return True
        if hstate != "DELE" or home[2] != dnode:
            # The home may briefly disagree while DELEGATE/UNDELE messages
            # are in flight; those windows have non-empty networks.
            return len(state[7]) > 0
        governing_sharers = dsharers
        governing_owner = downer if dstate == "E" else None
    else:
        if hstate == "DELE":
            return len(state[7]) > 0  # UNDELE in flight
        governing_sharers = hsharers if hstate == "S" else hsharers
        governing_owner = howner if hstate == "E" else None
    # Every S copy and unpinned RAC copy must be covered by the sharing
    # vector -- unless data messages still in flight explain the gap.
    in_flight = any(msg[0] in ("DATA_S", "SH_RESP", "UPDATE", "DATA_E",
                               "ACK_X", "EX_RESP", "INV", "INV_ACK",
                               "WB", "EVC", "GETS", "GETX", "NACK",
                               "DELEGATE", "UNDELE")
                    for _pair, queue in state[7] for msg in queue)
    if in_flight:
        return True
    for node, (st, _v) in enumerate(caches):
        if st == "S" and node not in governing_sharers:
            return False
        if st in "EM" and governing_owner != node:
            return False
    for node, rac in enumerate(racs):
        if rac is not None and not rac[1] and node not in governing_sharers:
            return False
    return True


def value_coherence(state):
    """Quiescent states: every readable copy holds the latest committed
    value, and whoever is authoritative for memory holds it too."""
    cur, caches, racs, cpus, home, deleg, _hints, net = _unpack(state)
    if net or any(cpu is not None for cpu in cpus):
        return True  # only a quiescent-state property
    owner_nodes = [n for n, (st, _v) in enumerate(caches) if st in "EM"]
    for node, (st, value) in enumerate(caches):
        if st != "I" and value != cur:
            return False
    for node, rac in enumerate(racs):
        if rac is None:
            continue
        value, pinned = rac
        if pinned and owner_nodes == [node]:
            continue  # surrogate memory is stale while the producer owns
        if value != cur:
            return False
    if not owner_nodes:
        # Memory (or the delegated surrogate) must be current.
        if deleg is not None:
            dnode = deleg[0]
            rac = racs[dnode]
            if rac is None or rac[0] != cur:
                return False
        elif home[0] != "DELE" and home[3] != cur:
            return False
    return True


def delegation_wellformed(state):
    """DELE bookkeeping: at most one delegate, and it knows it."""
    _cur, _caches, racs, _cpus, home, deleg, _hints, net = _unpack(state)
    if deleg is None:
        return True
    dnode, entry = deleg
    # The delegate always holds a pinned surrogate-memory RAC entry.
    rac = racs[dnode]
    if rac is None or not rac[1]:
        return False
    # A delegated entry is never owned by a remote node.
    dstate, _dsharers, downer, _dv, _dbusy, _armed, _pend, _deferred = entry
    if dstate == "E" and downer != dnode:
        return False
    return True


ALL_INVARIANTS = (single_writer, directory_consistency, value_coherence,
                  delegation_wellformed)
