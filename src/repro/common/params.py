"""System configuration: the paper's Table 1 plus the six evaluated presets.

All times are expressed in CPU cycles of the simulated 2 GHz processor
(1 cycle = 0.5 ns), matching the units the paper reports: 100-cycle network
hop, 200-cycle DRAM access, 50-cycle default intervention delay.

The six system presets evaluated in Figure 7 are exposed as factory
functions and collected in :data:`EVALUATED_SYSTEMS`:

==============================  ==========================================
``baseline``                    plain directory write-invalidate protocol
``rac_only``                    + 32 KB remote access cache
``small`` (32e deledc, 32K RAC) + delegation + speculative updates
``large`` (1Ke deledc, 1M RAC)  the paper's "modest overhead" configuration
``dele1k_rac32k``               large delegate cache, small RAC
``dele32_rac1m``                small delegate cache, large RAC
==============================  ==========================================
"""

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace

from .errors import ConfigError

#: Cache line size used throughout the coherence layer (paper: 128 B L2 lines).
LINE_SIZE = 128

#: Minimum network packet size (paper: 32-byte header-only packets).
HEADER_BYTES = 32

#: Ceiling on simulated machine size.  The scaling study (docs/scaling.md)
#: targets 1024 nodes; 4096 leaves headroom without letting a typo allocate
#: a million-node system.
MAX_NODES = 4096


def _check_power_of_two(name, value):
    if value <= 0 or value & (value - 1):
        raise ConfigError("%s must be a positive power of two, got %r" % (name, value))


@dataclass(frozen=True)
class CacheConfig:
    """A set-associative cache (used for L1, L2, RAC and directory cache)."""

    size_bytes: int
    assoc: int
    line_size: int = LINE_SIZE
    latency: int = 10  # access latency in CPU cycles
    replacement: str = "lru"  # "lru" or "random"

    def __post_init__(self):
        _check_power_of_two("line size", self.line_size)
        if self.assoc < 1:
            raise ConfigError("associativity must be >= 1, got %r" % self.assoc)
        # Sizes need not be powers of two (Figure 8 compares against a
        # 1.04 MB L2), but must fill whole sets.
        if self.size_bytes <= 0 or self.size_bytes % (self.line_size * self.assoc):
            raise ConfigError(
                "cache size %d is not a multiple of line*assoc (%d)"
                % (self.size_bytes, self.line_size * self.assoc)
            )
        if self.replacement not in ("lru", "random"):
            raise ConfigError("unknown replacement policy %r" % self.replacement)

    @property
    def num_lines(self):
        return self.size_bytes // self.line_size

    @property
    def num_sets(self):
        return self.num_lines // self.assoc


@dataclass(frozen=True)
class DelegateCacheConfig:
    """The delegate cache: producer table + consumer table (paper §2.3).

    Entry counts refer to each table individually ("32-entry delegate
    tables").  The consumer table is 4-way set associative with random
    replacement per the paper; the producer table uses its age field (LRU).
    """

    entries: int = 32
    consumer_assoc: int = 4

    def __post_init__(self):
        _check_power_of_two("delegate table entries", self.entries)
        if self.consumer_assoc < 1 or self.entries % self.consumer_assoc:
            raise ConfigError(
                "consumer table of %d entries cannot be %d-way associative"
                % (self.entries, self.consumer_assoc)
            )


@dataclass(frozen=True)
class NetworkConfig:
    """Fat-tree interconnect model (NUMALink-4-like, paper §3.1).

    ``hop_latency`` is the node-to-node latency of one *protocol* hop for
    nodes under different leaf routers (the paper's "100 processor cycles
    latency per hop").  Nodes sharing a leaf router are slightly closer;
    ``intra_leaf_fraction`` scales their latency.  Router contention is not
    modelled (per the paper); hub port contention is (``hub_occupancy``).
    """

    hop_latency: int = 100
    intra_leaf_fraction: float = 0.5
    router_radix: int = 8
    header_bytes: int = HEADER_BYTES
    hub_occupancy: int = 4  # cycles a hub's port is busy per message
    #: Extra cross-leaf latency per router level climbed beyond the first,
    #: as a fraction of ``hop_latency``.  Machines small enough to climb a
    #: single level (the paper's 16 nodes at radix 8) are unaffected; a
    #: 3-level traversal costs ``hop_latency * (1 + 2 * frac)``.
    level_latency_frac: float = 0.25

    def __post_init__(self):
        if self.hop_latency < 1:
            raise ConfigError("hop latency must be >= 1 cycle")
        if not 0.0 < self.intra_leaf_fraction <= 1.0:
            raise ConfigError("intra_leaf_fraction must be in (0, 1]")
        if self.router_radix < 2:
            raise ConfigError("router radix must be >= 2")
        if self.level_latency_frac < 0.0:
            raise ConfigError("level_latency_frac must be >= 0")


@dataclass(frozen=True)
class ProtocolConfig:
    """Which mechanisms are enabled and how they are tuned.

    The paper's detector fields are fixed-width: ``last_writer`` 4 bits,
    ``reader_count`` 2-bit saturating, ``write_repeat`` 2-bit saturating;
    a line is marked producer-consumer when write_repeat saturates, i.e.
    reaches ``write_repeat_threshold`` (3 for a 2-bit counter).
    """

    enable_rac: bool = False
    enable_delegation: bool = False
    enable_updates: bool = False
    intervention_delay: int = 50
    write_repeat_bits: int = 2
    reader_count_bits: int = 2
    #: Sharing-pattern predictor: "simple" (the paper's §2.2 detector) or
    #: "multiwriter" (the §5 future-work extension tolerating a small set
    #: of alternating writers) — see :mod:`repro.protocol.predictors`.
    detector_kind: str = "simple"
    nack_retry_delay: int = 20  # cycles a requester backs off after a NACK
    max_retries: int = 10_000  # livelock tripwire, not a protocol feature
    #: NACK retry pacing: "fixed" re-issues after ``nack_retry_delay`` every
    #: time (the seed behaviour); "exp" doubles the delay per consecutive
    #: NACK of one miss, capped at ``retry_backoff_cap``, breaking the
    #: synchronised retry storms two NACKing nodes can ping-pong into.
    retry_backoff: str = "fixed"
    retry_backoff_cap: int = 640
    #: Fraction of the (possibly backed-off) delay added as seeded random
    #: jitter, e.g. 0.5 adds up to +50%.  0.0 keeps retries deterministic
    #: relative to the base delay.
    retry_jitter_frac: float = 0.0

    def __post_init__(self):
        if self.enable_updates and not self.enable_delegation:
            raise ConfigError("speculative updates require delegation")
        if self.enable_delegation and not self.enable_rac:
            raise ConfigError(
                "delegation requires a RAC (surrogate memory for delegated lines)"
            )
        if self.intervention_delay < 0:
            raise ConfigError("intervention delay must be >= 0")
        if self.write_repeat_bits < 1 or self.reader_count_bits < 1:
            raise ConfigError("detector counters need at least one bit")
        if self.detector_kind not in ("simple", "multiwriter"):
            raise ConfigError("unknown detector kind %r" % self.detector_kind)
        if self.retry_backoff not in ("fixed", "exp"):
            raise ConfigError("unknown retry backoff %r" % self.retry_backoff)
        if self.retry_backoff_cap < self.nack_retry_delay:
            raise ConfigError("retry_backoff_cap must be >= nack_retry_delay")
        if not 0.0 <= self.retry_jitter_frac <= 1.0:
            raise ConfigError("retry_jitter_frac must be in [0, 1]")

    @property
    def write_repeat_threshold(self):
        """Saturation value of the write-repeat counter."""
        return (1 << self.write_repeat_bits) - 1


@dataclass(frozen=True)
class SystemConfig:
    """Full simulated-system configuration (paper Table 1 defaults)."""

    num_nodes: int = 16
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 2, latency=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 4, latency=10)
    )
    rac: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 4, latency=12,
                                            replacement="random")
    )
    delegate: DelegateCacheConfig = field(default_factory=DelegateCacheConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    dram_latency: int = 200
    directory_cache_entries: int = 8192
    #: Sharing-vector encoding at the home directory: "full" (the paper's
    #: exact bit vector), "coarse:G" or "limited:K" — see
    #: :mod:`repro.directory.formats`.
    directory_format: str = "full"
    #: Which coherence protocol runs the hubs: "adaptive" (the paper's
    #: delegation/update protocol — the default and the only one with a
    #: model-checker twin), or an arena baseline ("wi", "mesi", "dragon")
    #: — see :mod:`repro.protocol.arena`.  Validated at System
    #: construction, not here, to keep params import-light.
    protocol_name: str = "adaptive"
    line_size: int = LINE_SIZE
    seed: int = 12345

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ConfigError("need at least one node")
        if self.num_nodes > MAX_NODES:
            raise ConfigError(
                "num_nodes %d exceeds the supported maximum of %d"
                % (self.num_nodes, MAX_NODES))
        for cache in (self.l1, self.l2, self.rac):
            if cache.line_size != self.line_size:
                raise ConfigError(
                    "all coherence-level caches must use the %d-byte system "
                    "line size" % self.line_size
                )
        # Validate the directory-format spec at construction so a typo'd
        # "coarse:x" fails here with a ConfigError rather than deep inside
        # hub setup.  Local import: formats depends only on common.errors,
        # so this cannot cycle, and params stays import-light otherwise.
        from ..directory.formats import DirectoryFormat

        DirectoryFormat.parse(self.directory_format)

    # -- derived helpers -------------------------------------------------

    @property
    def last_writer_bits(self):
        """Width of the detector's last-writer field.

        The paper (§2.2) fixes it at 4 bits for its 16-node machine; larger
        machines grow the field to address every node, which the area model
        (:mod:`repro.analysis.area`) charges for.
        """
        return max(4, (self.num_nodes - 1).bit_length())

    def line_of(self, addr):
        """Cache-line base address containing byte address ``addr``."""
        return addr & ~(self.line_size - 1)

    def with_protocol(self, **kwargs):
        """Return a copy with protocol fields replaced."""
        return replace(self, protocol=replace(self.protocol, **kwargs))


# ---------------------------------------------------------------------------
# The six systems evaluated in Figure 7.
# ---------------------------------------------------------------------------

_KB = 1024
_MB = 1024 * 1024


def baseline(**overrides):
    """Plain directory-based write-invalidate CC-NUMA (no RAC, no extensions)."""
    return SystemConfig(**overrides)


def rac_only(rac_bytes=32 * _KB, **overrides):
    """Baseline plus a remote access cache (victim cache for remote data)."""
    cfg = SystemConfig(**overrides)
    return replace(
        cfg,
        rac=replace(cfg.rac, size_bytes=rac_bytes),
        protocol=replace(cfg.protocol, enable_rac=True),
    )


def enhanced(delegate_entries=32, rac_bytes=32 * _KB, **overrides):
    """RAC + delegation + speculative updates (the paper's full mechanism)."""
    cfg = SystemConfig(**overrides)
    return replace(
        cfg,
        rac=replace(cfg.rac, size_bytes=rac_bytes),
        delegate=replace(cfg.delegate, entries=delegate_entries),
        protocol=replace(
            cfg.protocol,
            enable_rac=True,
            enable_delegation=True,
            enable_updates=True,
        ),
    )


def delegation_only(delegate_entries=32, rac_bytes=32 * _KB, **overrides):
    """Delegation without speculative updates (paper: within ~1% of baseline)."""
    cfg = enhanced(delegate_entries, rac_bytes, **overrides)
    return replace(cfg, protocol=replace(cfg.protocol, enable_updates=False))


def small(**overrides):
    """32-entry delegate tables + 32 KB RAC ("very little hardware overhead")."""
    return enhanced(32, 32 * _KB, **overrides)


def large(**overrides):
    """1K-entry delegate tables + 1 MB RAC ("modest overhead")."""
    return enhanced(1024, 1 * _MB, **overrides)


def dele1k_rac32k(**overrides):
    return enhanced(1024, 32 * _KB, **overrides)


def dele32_rac1m(**overrides):
    return enhanced(32, 1 * _MB, **overrides)


# ---------------------------------------------------------------------------
# Content hashing (the sweep engine's cache keys).
# ---------------------------------------------------------------------------


def config_to_dict(config):
    """Canonical plain-dict form of a :class:`SystemConfig`.

    Nested config dataclasses flatten to plain dicts of JSON-safe scalars,
    so the result round-trips through ``json`` and is stable across
    processes and Python versions (unlike ``hash()``, which is salted).
    """
    return asdict(config)


def config_from_dict(doc):
    """Inverse of :func:`config_to_dict`: rebuild a :class:`SystemConfig`.

    Accepts exactly the nested-dict shape ``config_to_dict`` produces (the
    shape stored in sweep-cache entries and fuzz repro artifacts), so a
    config survives a JSON round-trip bit-for-bit:
    ``config_digest(config_from_dict(config_to_dict(c))) == config_digest(c)``.
    """
    doc = dict(doc)
    return SystemConfig(
        num_nodes=doc["num_nodes"],
        l1=CacheConfig(**doc["l1"]),
        l2=CacheConfig(**doc["l2"]),
        rac=CacheConfig(**doc["rac"]),
        delegate=DelegateCacheConfig(**doc["delegate"]),
        network=NetworkConfig(**doc["network"]),
        protocol=ProtocolConfig(**doc["protocol"]),
        dram_latency=doc["dram_latency"],
        directory_cache_entries=doc["directory_cache_entries"],
        directory_format=doc["directory_format"],
        # Pre-arena documents (committed fuzz artifacts, old cache entries)
        # predate the field; they all ran the adaptive protocol.
        protocol_name=doc.get("protocol_name", "adaptive"),
        line_size=doc["line_size"],
        seed=doc["seed"],
    )


def config_digest(config):
    """Stable content hash (sha256 hex) of a :class:`SystemConfig`.

    Two configs digest equal iff every field (including nested cache,
    network and protocol configs) is equal — this is what makes sweep-cache
    keys deterministic across processes and sessions.
    """
    canonical = json.dumps(config_to_dict(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Name -> factory for the six systems of Figure 7, in the paper's order.
EVALUATED_SYSTEMS = {
    "base": baseline,
    "rac32k": rac_only,
    "dele32_rac32k": small,
    "dele1k_rac1m": large,
    "dele1k_rac32k": dele1k_rac32k,
    "dele32_rac1m": dele32_rac1m,
}
