"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class ProtocolError(ReproError):
    """The coherence protocol reached a state it should never reach.

    This always indicates a bug in the protocol implementation (or a
    hand-built message sequence that no real execution produces), never a
    legal race: legal races are resolved with NACK/retry.
    """


class UnhandledMessageError(ProtocolError):
    """A message arrived at a node with no handler registered for it.

    Carries the (node, message type, directory state) coordinates so a
    runtime failure names the same transition a ``repro lint`` handler-
    coverage finding would (check COV001/COV003).
    """

    def __init__(self, node, mtype, dir_state, msg, cycle=None):
        self.node = node
        self.mtype = mtype
        self.dir_state = dir_state
        self.msg = msg
        self.cycle = cycle
        where = "node %s" % node if cycle is None else \
            "node %s @ cycle %s" % (node, cycle)
        super().__init__(
            "[%s] no handler for %s (directory state %s): %r"
            % (where, getattr(mtype, "name", mtype), dir_state, msg))


class SimulationError(ReproError):
    """The simulator was driven incorrectly (e.g. op stream misuse)."""


class CoherenceViolation(ReproError):
    """The online coherence/SC checker observed an illegal value.

    Raised when a committed read returns a value other than the one written
    by the most recent write (in global completion order) to that line.
    """


class InvariantViolation(ReproError):
    """A model-checking invariant failed; carries the counterexample trace."""

    def __init__(self, invariant_name, state, trace):
        self.invariant_name = invariant_name
        self.state = state
        self.trace = trace
        super().__init__(
            "invariant %r violated after %d steps" % (invariant_name, len(trace))
        )


class DeadlockError(ReproError):
    """The model checker found a non-quiescent state with no enabled rule."""

    def __init__(self, state, trace):
        self.state = state
        self.trace = trace
        super().__init__("deadlock state reached after %d steps" % len(trace))
