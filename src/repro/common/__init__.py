"""Shared infrastructure: configuration, events, statistics, RNG, errors."""

from .errors import (
    CoherenceViolation,
    ConfigError,
    DeadlockError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    SimulationError,
)
from .events import EventQueue
from .params import (
    EVALUATED_SYSTEMS,
    CacheConfig,
    DelegateCacheConfig,
    NetworkConfig,
    ProtocolConfig,
    SystemConfig,
    baseline,
    config_digest,
    config_from_dict,
    config_to_dict,
    delegation_only,
    enhanced,
    large,
    rac_only,
    small,
)
from .stats import Stats

__all__ = [
    "CoherenceViolation",
    "ConfigError",
    "DeadlockError",
    "InvariantViolation",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "EventQueue",
    "EVALUATED_SYSTEMS",
    "CacheConfig",
    "DelegateCacheConfig",
    "NetworkConfig",
    "ProtocolConfig",
    "SystemConfig",
    "baseline",
    "config_digest",
    "config_from_dict",
    "config_to_dict",
    "delegation_only",
    "enhanced",
    "large",
    "rac_only",
    "small",
    "Stats",
]
