"""Discrete-event scheduling core.

The whole simulator runs off one :class:`EventQueue`: hubs, processors, the
network fabric and the barrier manager all schedule plain callbacks at
absolute times (in CPU cycles).  Events scheduled for the same cycle fire in
scheduling order (a monotonically increasing sequence number breaks ties),
which keeps runs fully deterministic.

The queue is on the hot path of every simulated cycle, so the public
validated entry points (:meth:`schedule` / :meth:`schedule_at`) are joined
by two fast paths: :meth:`push_at`, an unchecked push for call sites that
can prove their timestamps are never in the past (the fabric, the
processors' self-rescheduling), and :meth:`schedule_many`, which amortises
validation and attribute lookups over a whole batch.  :meth:`run` inlines
the pop/fire loop instead of delegating to :meth:`step`.
"""

import heapq


class EventQueue:
    """A deterministic discrete-event queue keyed by absolute cycle time."""

    __slots__ = ("_heap", "_seq", "_now", "_processed")

    def __init__(self):
        self._heap = []
        self._seq = 0
        self._now = 0
        self._processed = 0

    @property
    def now(self):
        """Current simulation time in CPU cycles."""
        return self._now

    @property
    def pending(self):
        """Number of events waiting to fire."""
        return len(self._heap)

    @property
    def processed(self):
        """Total number of events fired so far."""
        return self._processed

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to fire ``delay`` cycles from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current cycle.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past (delay=%r)" % delay)
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback, args))
        self._seq += 1

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self._now:
            raise ValueError(
                "cannot schedule at %r, current time is %r" % (time, self._now)
            )
        heapq.heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def push_at(self, time, callback, *args):
        """Unchecked :meth:`schedule_at` for proven-safe hot call sites.

        Callers must guarantee ``time >= now`` (e.g. ``now`` plus a
        non-negative latency).  A past timestamp here would not raise —
        it would silently fire out of order — so this is reserved for the
        fabric and other core loops whose arithmetic makes the invariant
        structural.
        """
        heapq.heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def schedule_many(self, batch):
        """Schedule a batch of ``(delay, callback, args)`` triples.

        Equivalent to calling :meth:`schedule` per triple (same validation,
        same deterministic ordering: batch order breaks same-cycle ties) but
        with the per-event attribute lookups hoisted out of the loop.
        ``args`` must be a tuple.  Returns the number of events scheduled.
        """
        now = self._now
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        count = 0
        try:
            for delay, callback, args in batch:
                if delay < 0:
                    raise ValueError(
                        "cannot schedule an event in the past (delay=%r)" % delay)
                push(heap, (now + delay, seq, callback, args))
                seq += 1
                count += 1
        finally:
            self._seq = seq
        return count

    def step(self):
        """Fire the single next event.  Returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback(*args)
        return True

    def run(self, max_events=None, max_cycles=None):
        """Drain the queue.

        Stops when the queue is empty, when ``max_events`` events have fired,
        or when simulation time would exceed ``max_cycles``.  On the
        ``max_cycles`` exit ``now`` advances to the cap itself (no event fires
        there), so callers comparing ``now`` against their cap see the true
        stall point rather than the last fired event.  Returns the number of
        events processed by this call.

        The loop is inlined (no :meth:`step` call per event) and the
        ``processed`` counter is folded in via try/finally, preserving the
        historical invariant that an event's own firing is already counted
        if its callback raises — fuzz repro digests embed that number.
        """
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        try:
            if max_events is None and max_cycles is None:
                # Uncapped fast path — the common case for real runs.
                while heap:
                    time, _seq, callback, args = pop(heap)
                    self._now = time
                    fired += 1
                    callback(*args)
            else:
                while heap:
                    if max_events is not None and fired >= max_events:
                        break
                    if max_cycles is not None and heap[0][0] > max_cycles:
                        if max_cycles > self._now:
                            self._now = max_cycles
                        break
                    item = pop(heap)
                    self._now = item[0]
                    fired += 1
                    item[2](*item[3])
        finally:
            self._processed += fired
        return fired
