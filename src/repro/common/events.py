"""Discrete-event scheduling core.

The whole simulator runs off one :class:`EventQueue`: hubs, processors, the
network fabric and the barrier manager all schedule plain callbacks at
absolute times (in CPU cycles).  Events scheduled for the same cycle fire in
scheduling order (a monotonically increasing sequence number breaks ties),
which keeps runs fully deterministic.
"""

import heapq


class EventQueue:
    """A deterministic discrete-event queue keyed by absolute cycle time."""

    def __init__(self):
        self._heap = []
        self._seq = 0
        self._now = 0
        self._processed = 0

    @property
    def now(self):
        """Current simulation time in CPU cycles."""
        return self._now

    @property
    def pending(self):
        """Number of events waiting to fire."""
        return len(self._heap)

    @property
    def processed(self):
        """Total number of events fired so far."""
        return self._processed

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to fire ``delay`` cycles from now.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current cycle.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past (delay=%r)" % delay)
        self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self._now:
            raise ValueError(
                "cannot schedule at %r, current time is %r" % (time, self._now)
            )
        heapq.heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def step(self):
        """Fire the single next event.  Returns False when the queue is empty."""
        if not self._heap:
            return False
        time, _seq, callback, args = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback(*args)
        return True

    def run(self, max_events=None, max_cycles=None):
        """Drain the queue.

        Stops when the queue is empty, when ``max_events`` events have fired,
        or when simulation time would exceed ``max_cycles``.  On the
        ``max_cycles`` exit ``now`` advances to the cap itself (no event fires
        there), so callers comparing ``now`` against their cap see the true
        stall point rather than the last fired event.  Returns the number of
        events processed by this call.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                break
            if max_cycles is not None and self._heap[0][0] > max_cycles:
                if max_cycles > self._now:
                    self._now = max_cycles
                break
            self.step()
            fired += 1
        return fired
