"""Statistics collection for simulation runs.

A :class:`Stats` object is a flat bag of named integer counters with a few
structured conveniences (per-message-type counts, miss classification).
Hubs and processors increment counters as they go; at the end of a run the
harness snapshots everything into a plain dict for analysis.

Counter naming convention: ``<area>.<event>`` — e.g. ``msg.sent.GETS``,
``miss.remote_3hop``, ``dele.undelegate.capacity``.
"""

from collections import defaultdict


class Stats:
    """A bag of named counters, mergeable across nodes."""

    def __init__(self):
        self._counters = defaultdict(int)

    def inc(self, name, amount=1):
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counters[name] += amount

    def get(self, name):
        """Current value of ``name`` (zero if never incremented)."""
        return self._counters[name]

    def prefixed(self, prefix):
        """All counters whose names start with ``prefix``, as a dict."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def total(self, prefix):
        """Sum of all counters whose names start with ``prefix``."""
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    def merge(self, other):
        """Accumulate another Stats object into this one."""
        for name, value in other._counters.items():
            self._counters[name] += value
        return self

    def as_dict(self):
        """Snapshot all counters as a plain, sorted dict."""
        return dict(sorted(self._counters.items()))

    def __repr__(self):
        return "Stats(%d counters)" % len(self._counters)


# Canonical counter names used across the simulator.  Kept in one place so
# tests and analysis reference them symbolically instead of via string typos.

MISS_LOCAL = "miss.local"            # satisfied on-node (local memory or RAC)
MISS_2HOP = "miss.remote_2hop"       # request + reply, no third party
MISS_3HOP = "miss.remote_3hop"       # home had to involve a remote owner
MSG_SENT = "msg.sent."               # + message type name
MSG_BYTES = "msg.bytes"              # total bytes put on the network
HIT_L1 = "hit.l1"
HIT_L2 = "hit.l2"
HIT_RAC = "hit.rac"                  # RAC hits that satisfied a processor miss
HIT_RAC_UPDATE = "hit.rac_update"    # RAC hits on speculatively pushed data
NACKS = "protocol.nack"
RETRIES = "protocol.retry"
DELEGATIONS = "dele.delegate"
UNDELEGATIONS = "dele.undelegate."   # + reason
UPDATES_SENT = "update.sent"
UPDATES_CONSUMED = "update.consumed"
UPDATES_WASTED = "update.wasted"     # invalidated before ever being read
INTERVENTIONS = "update.intervention"
PC_DETECTED = "detector.marked"


def remote_misses(stats):
    """Total remote (2-hop + 3-hop) misses in a Stats object."""
    return stats.get(MISS_2HOP) + stats.get(MISS_3HOP)


def total_messages(stats):
    """Total network messages of all types."""
    return stats.total(MSG_SENT)
