"""Seeded random-number utilities.

Every stochastic component (workload generators, random cache replacement)
draws from its own named stream derived from the system seed, so adding a
new consumer of randomness never perturbs existing ones and runs are fully
reproducible.
"""

import random
import zlib


def derive_seed(base_seed, name):
    """Derive a stable 32-bit seed for stream ``name`` from ``base_seed``."""
    return (base_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF


def stream(base_seed, name):
    """A private ``random.Random`` for the named stream."""
    return random.Random(derive_seed(base_seed, name))
