"""Trace exporters: Chrome/Perfetto trace-event JSON and JSONL dumps.

Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` both read the
Chrome trace-event JSON format: one process ("pid") per simulated node,
with the hub's transaction spans, delegation lifetimes and CPU stall
windows on separate named threads ("tid") so spans nest visually under
each node.  Timestamps are simulation cycles written to the ``ts``/``dur``
microsecond fields — absolute units don't matter for inspection, relative
ones do.

The JSONL exporter writes one JSON object per record in deterministic
timeline order; traces of the same (workload, config, seed) are
byte-identical, which the test suite asserts.
"""

import io
import json

from .tracer import Span

#: Thread ids within each node's Perfetto process, in display order.
TID_HUB = 0          # transaction spans + point events
TID_DELEGATION = 1   # delegation lifetime spans
TID_CPU = 2          # CPU stall windows

_THREAD_NAMES = {
    TID_HUB: "hub transactions",
    TID_DELEGATION: "delegation",
    TID_CPU: "cpu stall",
}

_SPAN_TIDS = {"delegation": TID_DELEGATION, "cpu.stall": TID_CPU}


def _span_perfetto(span):
    args = {"addr": "0x%x" % span.addr, "outcome": span.outcome}
    if span.retries:
        args["retries"] = span.retries
    if span.attempts:
        args["attempts"] = span.attempts
    if span.nacks:
        args["nacks"] = span.nacks
    args.update(span.args)
    end = span.end if span.end is not None else span.start
    return {
        "ph": "X",
        "pid": span.node,
        "tid": _SPAN_TIDS.get(span.kind, TID_HUB),
        "ts": span.start,
        "dur": end - span.start,
        "name": "%s 0x%x" % (span.kind, span.addr),
        "cat": span.kind.split(".")[0],
        "args": args,
    }


def _event_perfetto(event):
    args = {"addr": "0x%x" % event.addr}
    args.update(event.args)
    return {
        "ph": "i",
        "s": "t",
        "pid": event.node,
        "tid": TID_HUB,
        "ts": event.ts,
        "name": event.name,
        "cat": event.name.split(".")[0],
        "args": args,
    }


def to_perfetto(tracer):
    """The Chrome trace-event document for a finished tracer, as a dict."""
    records = tracer.sorted_records()
    nodes = sorted({record.node for record in records})
    trace_events = []
    for node in nodes:
        trace_events.append({
            "ph": "M", "pid": node, "ts": 0, "name": "process_name",
            "args": {"name": "node %d" % node},
        })
        for tid, label in sorted(_THREAD_NAMES.items()):
            trace_events.append({
                "ph": "M", "pid": node, "tid": tid, "ts": 0,
                "name": "thread_name", "args": {"name": label},
            })
    body = []
    for record in records:
        if isinstance(record, Span):
            body.append(_span_perfetto(record))
        else:
            body.append(_event_perfetto(record))
    # Perfetto wants per-track monotone timestamps; records are already in
    # global (ts, id) order, which is monotone within every (pid, tid) too.
    trace_events.extend(body)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "repro.obs",
            "finalized_at": tracer.finalized_at,
            "spans": len(tracer.spans),
            "events": len(tracer.events),
        },
    }


def _span_jsonl(span):
    return {
        "type": "span",
        "sid": span.sid,
        "kind": span.kind,
        "node": span.node,
        "addr": span.addr,
        "start": span.start,
        "end": span.end,
        "outcome": span.outcome,
        "retries": span.retries,
        "attempts": span.attempts,
        "nacks": span.nacks,
        "args": span.args,
    }


def _event_jsonl(event):
    return {
        "type": "event",
        "eid": event.eid,
        "name": event.name,
        "node": event.node,
        "addr": event.addr,
        "ts": event.ts,
        "args": event.args,
    }


def jsonl_lines(tracer):
    """Deterministic JSONL lines (no trailing newlines) for every record."""
    lines = []
    for record in tracer.sorted_records():
        obj = (_span_jsonl(record) if isinstance(record, Span)
               else _event_jsonl(record))
        lines.append(json.dumps(obj, sort_keys=True,
                                separators=(",", ":")))
    return lines


def _open_out(path_or_file):
    if hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, "w"), True


def export_perfetto(tracer, path_or_file):
    """Write the Chrome/Perfetto trace JSON; returns bytes written."""
    out, owned = _open_out(path_or_file)
    try:
        text = json.dumps(to_perfetto(tracer), sort_keys=True)
        out.write(text)
        return len(text)
    finally:
        if owned:
            out.close()


def export_jsonl(tracer, path_or_file):
    """Write one JSON record per line; returns the number of records."""
    out, owned = _open_out(path_or_file)
    try:
        lines = jsonl_lines(tracer)
        for line in lines:
            out.write(line)
            out.write("\n")
        return len(lines)
    finally:
        if owned:
            out.close()


def jsonl_text(tracer):
    """The whole JSONL dump as one string (for determinism checks)."""
    buffer = io.StringIO()
    export_jsonl(tracer, buffer)
    return buffer.getvalue()
