"""Streaming observability metrics: counters and fixed-bucket histograms.

Unlike :class:`repro.common.stats.Stats` — the simulator's terminal
counters — these metrics keep *distributions*: miss latency by hop class,
NACK/retry counts per transaction, and intervention-delay occupancy.
Everything is streaming (O(1) memory per histogram) so full-scale runs can
keep metrics on even when span recording is sampled down.

Bucket boundaries are fixed at construction; a value lands in the first
bucket whose upper bound is >= the value, with one overflow bucket at the
end.  Fixed buckets keep the summary deterministic and mergeable.
"""

import bisect
from collections import defaultdict


def exponential_bounds(start, factor, count):
    """``count`` ascending bucket upper bounds growing by ``factor``.

    ``exponential_bounds(50, 2, 4)`` -> ``(50, 100, 200, 400)``.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    value = start
    for _ in range(count):
        bounds.append(value)
        value = value * factor
    return tuple(bounds)


class Histogram:
    """A fixed-bucket histogram with streaming count/sum/min/max.

    ``bounds`` are ascending inclusive upper bounds; values above the last
    bound fall into a final overflow bucket.
    """

    def __init__(self, bounds):
        bounds = tuple(bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly ascending")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def bucket_of(self, value):
        """Index of the bucket ``value`` falls into (last = overflow)."""
        return bisect.bisect_left(self.bounds, value)

    def record(self, value):
        self.counts[self.bucket_of(value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction):
        """Upper bound of the bucket containing the ``fraction`` quantile.

        Returns None on an empty histogram, and the recorded maximum for
        quantiles landing in the overflow bucket.
        """
        if not self.count:
            return None
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        threshold = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= threshold and bucket_count:
                if index >= len(self.bounds):
                    return self.max
                return self.bounds[index]
        return self.max

    def quantiles(self, fractions=(0.5, 0.95)):
        """``{"p50": ..., "p95": ...}`` via :meth:`percentile`.

        The serving layer's latency metrics use this; keys are
        ``p<percent>`` with trailing-zero-free percents (0.999 -> p99.9).
        """
        out = {}
        for fraction in fractions:
            label = ("%g" % (fraction * 100.0))
            out["p" + label] = self.percentile(fraction)
        return out

    def to_dict(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self):
        return "Histogram(n=%d, mean=%.1f)" % (self.count, self.mean)


#: Default miss-latency buckets, in cycles: one network hop is 100 cycles
#: and DRAM is 200, so the interesting range is ~10 (local hit) to a few
#: thousand (NACK/retry storms).
MISS_LATENCY_BOUNDS = exponential_bounds(25, 2, 10)  # 25 .. 12800

#: Retry counts per transaction: most misses retry 0 times; delegation
#: races produce small bursts.
RETRY_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64)

#: Intervention-delay occupancy (cycles armed before firing/cancelling).
OCCUPANCY_BOUNDS = exponential_bounds(25, 2, 8)  # 25 .. 3200


class ObsMetrics:
    """All streaming metrics one traced run produces.

    * ``miss_latency[path]`` — latency histogram per hop class
      (``local`` / ``2hop`` / ``3hop``), fed by every completed miss.
    * ``retries`` — NACK-retry count per completed transaction.
    * ``intervention_occupancy`` — cycles a delayed intervention stayed
      armed before firing or being cancelled/superseded.
    * ``counters`` — streaming event counters (``span.*``, ``event.*``).
    """

    PATHS = ("local", "2hop", "3hop")

    def __init__(self):
        self.miss_latency = {path: Histogram(MISS_LATENCY_BOUNDS)
                             for path in self.PATHS}
        self.retries = Histogram(RETRY_BOUNDS)
        self.intervention_occupancy = Histogram(OCCUPANCY_BOUNDS)
        self.counters = defaultdict(int)

    def inc(self, name, amount=1):
        self.counters[name] += amount

    def record_miss(self, path, latency, retries):
        hist = self.miss_latency.get(path)
        if hist is None:  # unknown path class: count it, don't crash the run
            self.inc("miss.unknown_path")
            return
        hist.record(latency)
        self.retries.record(retries)

    def record_occupancy(self, cycles):
        self.intervention_occupancy.record(cycles)

    def summary(self):
        """A plain-dict snapshot for ``RunResult.extras["obs"]``."""
        return {
            "miss_latency": {path: hist.to_dict()
                             for path, hist in self.miss_latency.items()},
            "retries": self.retries.to_dict(),
            "intervention_occupancy": self.intervention_occupancy.to_dict(),
            "counters": dict(sorted(self.counters.items())),
        }
