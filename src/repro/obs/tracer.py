"""Transaction-level tracer for the coherence simulator.

The tracer records two kinds of things:

* **Transaction spans** — one per processor miss, from issue to grant,
  with every (re)issue attempt, every NACK, the final path class
  (local / 2-hop / 3-hop) and retry count.  Delegation lifetimes
  (DELEGATE accepted → UNDELE sent) and CPU stall windows are spans too.
* **Point events** — delegation initiation/decline, undelegation,
  speculative-update pushes and receipts, RAC hits, intervention
  arm/fire/cancel, and (optionally) every network message.

The simulator's hot paths guard every call with ``if tracer is not None``,
so a disabled tracer (the default) costs one attribute load and a branch —
the no-op fast path.  When enabled, *metrics* (histograms, counters — see
:class:`repro.obs.metrics.ObsMetrics`) are always full-fidelity, while
span/event *records* obey the sampling controls in :class:`TraceConfig`:
restrict by node, by address range, or keep 1-in-N transactions.

All record fields come from the deterministic simulation (cycle times,
node ids, tracer-local sequence numbers), so a trace of a given
(workload, config, seed) is byte-identical across runs.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .metrics import ObsMetrics


@dataclass(frozen=True)
class TraceConfig:
    """Sampling and capture controls for a :class:`Tracer`.

    ``sample_every`` keeps 1-in-N transaction spans (1 = keep all);
    ``nodes`` restricts records to these requester nodes; ``addr_ranges``
    is an iterable of ``(start, end)`` half-open byte ranges.  Filters
    apply to span/event records only — metrics always see everything.
    ``capture_messages`` additionally records one event per network
    message (large; best combined with address filters).
    """

    sample_every: int = 1
    nodes: Optional[frozenset] = None
    addr_ranges: Optional[Tuple[Tuple[int, int], ...]] = None
    capture_messages: bool = False

    def __post_init__(self):
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.nodes is not None:
            object.__setattr__(self, "nodes", frozenset(self.nodes))
        if self.addr_ranges is not None:
            ranges = tuple((int(lo), int(hi)) for lo, hi in self.addr_ranges)
            for lo, hi in ranges:
                if hi <= lo:
                    raise ValueError("empty address range [%#x, %#x)" % (lo, hi))
            object.__setattr__(self, "addr_ranges", ranges)


@dataclass
class Span:
    """One traced interval on a node's timeline."""

    sid: int                 # tracer-local id, stable across same-seed runs
    kind: str                # "miss.read" / "miss.write" / "delegation" / "cpu.stall"
    node: int
    addr: int
    start: int
    end: Optional[int] = None
    outcome: Optional[str] = None   # path class, undelegation reason, ...
    retries: int = 0
    attempts: List[dict] = field(default_factory=list)  # issue/reissue hops
    nacks: List[dict] = field(default_factory=list)
    args: dict = field(default_factory=dict)

    @property
    def duration(self):
        return None if self.end is None else self.end - self.start


@dataclass
class Event:
    """One traced point-in-time occurrence."""

    eid: int
    name: str
    node: int
    addr: int
    ts: int
    args: dict = field(default_factory=dict)


class Tracer:
    """Collects spans, events and metrics for one simulation run."""

    def __init__(self, config=None):
        self.config = config if config is not None else TraceConfig()
        self.metrics = ObsMetrics()
        self.spans = []
        self.events = []
        self._seq = 0
        self._txn_count = 0           # all transactions, for 1-in-N sampling
        self._miss_spans = {}         # node -> Span | None (None = unsampled)
        self._dele_spans = {}         # (node, addr) -> Span
        self._armed = {}              # (node, addr) -> armed-at cycle
        self.finalized_at = None

    # -- sampling -----------------------------------------------------------

    def _in_filters(self, node, addr):
        cfg = self.config
        if cfg.nodes is not None and node not in cfg.nodes:
            return False
        if cfg.addr_ranges is not None:
            return any(lo <= addr < hi for lo, hi in cfg.addr_ranges)
        return True

    def _sample_txn(self, node, addr):
        self._txn_count += 1
        if not self._in_filters(node, addr):
            return False
        return (self._txn_count - 1) % self.config.sample_every == 0

    def _next_id(self):
        self._seq += 1
        return self._seq

    # -- transaction spans (requester side) ---------------------------------

    def miss_begin(self, node, addr, kind, now):
        self.metrics.inc("span.miss.%s" % kind)
        if not self._sample_txn(node, addr):
            self._miss_spans[node] = None
            return
        self._miss_spans[node] = Span(
            sid=self._next_id(), kind="miss.%s" % kind, node=node,
            addr=addr, start=now)

    def miss_issue(self, node, addr, now, target, mtype):
        span = self._miss_spans.get(node)
        if span is not None and span.addr == addr:
            span.attempts.append({"ts": now, "target": target,
                                  "mtype": mtype})

    def miss_nack(self, node, addr, now, reason="nack"):
        self.metrics.inc("event.nack")
        span = self._miss_spans.get(node)
        if span is not None and span.addr == addr:
            span.nacks.append({"ts": now, "reason": reason})

    def miss_end(self, node, addr, now, path, retries, start_time):
        self.metrics.record_miss(path, now - start_time, retries)
        span = self._miss_spans.pop(node, None)
        if span is not None and span.addr == addr:
            span.end = now
            span.outcome = path
            span.retries = retries
            self.spans.append(span)

    # -- delegation lifetime spans (producer side) --------------------------

    def delegation_begin(self, node, addr, now):
        self.metrics.inc("event.dele.accepted")
        if not self._in_filters(node, addr):
            return
        self._dele_spans[(node, addr)] = Span(
            sid=self._next_id(), kind="delegation", node=node, addr=addr,
            start=now)

    def delegation_end(self, node, addr, now, reason):
        self.metrics.inc("event.dele.undelegate.%s" % reason)
        span = self._dele_spans.pop((node, addr), None)
        if span is not None:
            span.end = now
            span.outcome = reason
            self.spans.append(span)

    # -- CPU stall spans ----------------------------------------------------

    def cpu_stall(self, node, addr, kind, start, end):
        """One completed CPU block window (miss start -> load/store replay)."""
        self.metrics.inc("span.cpu_stall")
        if not self._in_filters(node, addr):
            return
        self.spans.append(Span(
            sid=self._next_id(), kind="cpu.stall", node=node, addr=addr,
            start=start, end=end, outcome=kind))

    # -- point events -------------------------------------------------------

    def event(self, name, node, addr, now, **args):
        self.metrics.inc("event.%s" % name)
        if not self._in_filters(node, addr):
            return
        self.events.append(Event(eid=self._next_id(), name=name, node=node,
                                 addr=addr, ts=now, args=args))

    def rac_hit(self, node, addr, now, kind):
        self.event("rac.hit", node, addr, now, kind=kind)

    def rac_miss(self, node, addr, now):
        self.event("rac.miss", node, addr, now)

    def update_push(self, node, addr, now, targets, pruned):
        self.event("update.push", node, addr, now, targets=targets,
                   pruned=pruned)

    def update_recv(self, node, addr, now, src, outcome):
        self.event("update.recv", node, addr, now, src=src, outcome=outcome)

    # -- delayed-intervention occupancy -------------------------------------

    def intervention_armed(self, node, addr, now):
        previous = self._armed.get((node, addr))
        if previous is not None:
            # Re-armed before firing: the old arm is superseded.
            self.metrics.record_occupancy(now - previous)
            self.metrics.inc("event.intervention.superseded")
        self._armed[(node, addr)] = now
        self.event("intervention.armed", node, addr, now)

    def intervention_resolved(self, node, addr, now, outcome):
        """``outcome`` is ``fired`` / ``cancelled`` / ``abandoned``.

        A resolution with no matching armed record (e.g. a cancel after
        the intervention already fired) is ignored.
        """
        armed_at = self._armed.pop((node, addr), None)
        if armed_at is None:
            return
        self.metrics.record_occupancy(now - armed_at)
        self.event("intervention.%s" % outcome, node, addr, now)

    # -- network messages (optional, heavy) ---------------------------------

    def msg_send(self, msg, now, remote):
        if not self.config.capture_messages:
            return
        self.event("msg.send", msg.src, msg.addr, now, dst=msg.dst,
                   mtype=msg.mtype.label, remote=remote)

    # -- lifecycle ----------------------------------------------------------

    def finalize(self, now):
        """Close the run: flush still-open spans as unfinished records."""
        self.finalized_at = now
        for node in sorted(self._miss_spans):
            span = self._miss_spans[node]
            if span is not None:
                span.outcome = "unfinished"
                self.spans.append(span)
        self._miss_spans.clear()
        for key in sorted(self._dele_spans):
            span = self._dele_spans[key]
            span.outcome = "still-delegated"
            self.spans.append(span)
        self._dele_spans.clear()
        self._armed.clear()

    def sorted_records(self):
        """All spans and events in deterministic timeline order."""
        records = [(span.start, span.sid, span) for span in self.spans]
        records += [(evt.ts, evt.eid, evt) for evt in self.events]
        records.sort(key=lambda item: (item[0], item[1]))
        return [record for _, _, record in records]
