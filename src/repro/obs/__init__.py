"""``repro.obs`` — observability for the coherence simulator.

Transaction-level tracing (:class:`Tracer`, :class:`TraceConfig`),
streaming metrics (:class:`ObsMetrics`, :class:`Histogram`) and trace
exporters (Perfetto/Chrome JSON, JSONL).  See ``docs/observability.md``.

Typical use::

    from repro import run_app, small
    from repro.obs import Tracer, export_perfetto

    tracer = Tracer()
    run = run_app("em3d", small(), scale=0.1, trace=tracer)
    export_perfetto(tracer, "trace.json")      # open in ui.perfetto.dev
    print(run.stats["miss.remote_3hop"], len(tracer.spans))
"""

from .export import (
    export_jsonl,
    export_perfetto,
    jsonl_lines,
    jsonl_text,
    to_perfetto,
)
from .metrics import Histogram, ObsMetrics, exponential_bounds
from .tracer import Event, Span, TraceConfig, Tracer

__all__ = [
    "Event",
    "Histogram",
    "ObsMetrics",
    "Span",
    "TraceConfig",
    "Tracer",
    "export_jsonl",
    "export_perfetto",
    "exponential_bounds",
    "jsonl_lines",
    "jsonl_text",
    "to_perfetto",
]
