"""Fault injection at the network layer (the fuzz subsystem's chaos hook).

A :class:`ChaosPolicy` plugs into :class:`~repro.network.fabric.Fabric` and
perturbs message delivery without touching any protocol handler:

* **Delay jitter** — every remote message may arrive up to ``delay_jitter``
  cycles later than the topology says.
* **Bounded reordering** — with probability ``reorder_prob`` a message gets
  an extra bump of up to ``reorder_window`` cycles, letting it fall behind
  messages sent later on *other* channels.
* **Duplication** — idempotent messages are occasionally delivered twice.
* **Forced NACKs** — a retried request (GETS/GETX, INTERVENTION,
  UNDELE_REQ) is occasionally bounced with a protocol-legal NACK instead
  of being delivered, as if the target had been busy.

Two properties keep every perturbation *protocol-legal* (hostile schedules,
never impossible ones):

1. **Pairwise FIFO is preserved.**  The protocol relies on per-(src, dst)
   channel ordering (see the UPDATE_ACK note in
   :mod:`repro.network.message`): jittered arrivals are clamped to be
   non-decreasing per channel, so reordering only happens *across*
   channels — exactly the freedom a real fat-tree has.
2. **Only genuinely idempotent/retried traffic is duplicated or bounced.**
   Duplicating a NACK would double a requester's retry stream (two
   requests in flight for one miss); duplicating an INV_ACK would complete
   a write early.  The safe duplication set is WB_ACK, HOME_CHANGED and
   ack-less UPDATE; the safe bounce set is the three request types whose
   NACK paths the protocol already retries.  Forced NACKs use the reasons
   that mean "retry later" ("miss"/"busy"), never "no_copy"/"gone" (those
   make the home wait for a writeback that will never come).

A total ``force_nack_budget`` bounds injected NACKs so every run still
terminates; delay and reordering are finite by construction.
"""

from dataclasses import asdict, dataclass

from ..common.errors import ConfigError
from ..common.rng import stream
from .message import Message, MsgType

#: Message types that are safe to deliver twice.  WB_ACK is ignored by the
#: requester; HOME_CHANGED re-inserts the same hint; an ack-less UPDATE
#: re-lands the same value in the RAC (ack-bearing UPDATEs are excluded:
#: a doubled UPDATE_ACK would release an undelegation early).
_DUPLICABLE = frozenset({MsgType.WB_ACK, MsgType.HOME_CHANGED, MsgType.UPDATE})

#: Request types whose delivery may be replaced by a protocol-legal NACK.
_NACKABLE = frozenset({MsgType.GETS, MsgType.GETX, MsgType.INTERVENTION,
                       MsgType.UNDELE_REQ})


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one fault-injection policy (all JSON-safe scalars).

    The all-zero default injects nothing; :attr:`enabled` is False then and
    the simulator takes its unperturbed fast path.
    """

    seed: int = 0
    delay_jitter: int = 0        # max extra arrival delay per remote message
    reorder_prob: float = 0.0    # P(a message gets an extra reorder bump)
    reorder_window: int = 0      # max size of that bump, in cycles
    duplicate_prob: float = 0.0  # P(an idempotent message is delivered twice)
    force_nack_prob: float = 0.0  # P(a request delivery becomes a NACK)
    force_nack_budget: int = 64  # total forced NACKs per run (progress bound)

    def __post_init__(self):
        for name in ("delay_jitter", "reorder_window", "force_nack_budget"):
            if getattr(self, name) < 0:
                raise ConfigError("%s must be >= 0" % name)
        for name in ("reorder_prob", "duplicate_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError("%s must be in [0, 1]" % name)
        # A NACK probability of 1.0 would starve a single-target workload
        # outright; cap it so forward progress only leans on the budget.
        if not 0.0 <= self.force_nack_prob <= 0.9:
            raise ConfigError("force_nack_prob must be in [0, 0.9]")
        if self.reorder_prob and not self.reorder_window:
            raise ConfigError("reorder_prob needs a reorder_window")

    @property
    def enabled(self):
        return bool(self.delay_jitter or self.reorder_prob
                    or self.duplicate_prob or self.force_nack_prob)


def chaos_to_dict(config):
    """JSON-safe dict form of a :class:`ChaosConfig` (None passes through)."""
    return None if config is None else asdict(config)


def chaos_from_dict(doc):
    """Inverse of :func:`chaos_to_dict`."""
    return None if doc is None else ChaosConfig(**doc)


class ChaosPolicy:
    """Stateful per-run fault injector driven by one :class:`ChaosConfig`.

    The fabric consults it at two points: :meth:`arrival` when a remote
    message is put on the wire (jitter/reorder + the FIFO clamp, and the
    duplication decision via :meth:`duplicate_arrival`), and
    :meth:`forced_nack` when a message is about to be handed to the
    destination hub.  All randomness comes from one named stream off the
    chaos seed, so a (config, workload) pair replays identically.
    """

    def __init__(self, config, stats=None):
        self.config = config
        self.stats = stats
        self._rng = stream(config.seed, "chaos")
        self._channel_floor = {}  # (src, dst) -> latest arrival booked
        self._nack_budget = config.force_nack_budget

    @classmethod
    def resolve(cls, chaos, stats=None):
        """Normalise ``chaos`` (None | ChaosConfig | ChaosPolicy) to a
        policy or None; an all-zero config resolves to None (fast path)."""
        if chaos is None:
            return None
        if isinstance(chaos, ChaosConfig):
            return cls(chaos, stats=stats) if chaos.enabled else None
        return chaos

    def _inc(self, name, amount=1):
        if self.stats is not None:
            self.stats.inc(name, amount)

    # -- send-time hooks ----------------------------------------------------

    def arrival(self, msg, arrival):
        """Perturbed arrival time for ``msg``, clamped so arrivals on the
        (src, dst) channel stay non-decreasing (pairwise FIFO)."""
        cfg = self.config
        if cfg.delay_jitter:
            extra = self._rng.randrange(cfg.delay_jitter + 1)
            if extra:
                self._inc("chaos.delayed")
            arrival += extra
        if cfg.reorder_prob and self._rng.random() < cfg.reorder_prob:
            arrival += self._rng.randrange(cfg.reorder_window + 1)
            self._inc("chaos.reordered")
        return self._book(msg, arrival)

    def duplicate_arrival(self, msg, arrival):
        """Arrival time for an injected duplicate of ``msg``, or None.

        Only idempotent types are duplicated; the duplicate trails the
        original and raises the channel floor so later traffic on the same
        channel cannot overtake it.
        """
        cfg = self.config
        if not cfg.duplicate_prob or msg.mtype not in _DUPLICABLE:
            return None
        if msg.mtype is MsgType.UPDATE and msg.payload.get("ack"):
            return None  # a doubled UPDATE_ACK would undercount pending pushes
        if self._rng.random() >= cfg.duplicate_prob:
            return None
        self._inc("chaos.duplicated")
        return self._book(msg, arrival + 1 + self._rng.randrange(8))

    def _book(self, msg, arrival):
        key = (msg.src, msg.dst)
        floor = self._channel_floor.get(key)
        if floor is not None and arrival < floor:
            arrival = floor
        self._channel_floor[key] = arrival
        return arrival

    # -- delivery-time hook -------------------------------------------------

    def forced_nack(self, msg):
        """A NACK to send *instead of* delivering ``msg``, or None.

        Models the destination hub bouncing a request exactly as it would
        had the line been busy: the home/delegate never sees the request,
        the existing retry machinery takes it from there.
        """
        cfg = self.config
        if (not cfg.force_nack_prob or self._nack_budget <= 0
                or msg.mtype not in _NACKABLE):
            return None
        if msg.mtype in (MsgType.GETS, MsgType.GETX):
            victim = msg.payload.get("requester")
            payload = {"for": "miss", "chaos": True}
        elif msg.mtype is MsgType.INTERVENTION:
            victim = msg.src
            payload = {"for": "intervention", "reason": "busy", "chaos": True}
        else:  # UNDELE_REQ
            victim = msg.src
            payload = {"for": "recall", "reason": "busy", "chaos": True}
        if victim is None or self._rng.random() >= cfg.force_nack_prob:
            return None
        self._nack_budget -= 1
        self._inc("chaos.forced_nack")
        return Message(MsgType.NACK, src=msg.dst, dst=victim, addr=msg.addr,
                       payload=payload)
