"""Coherence message vocabulary and wire-size accounting.

Every inter-node interaction in the protocol is one of these message types.
Sizes follow the paper's NUMALink model: a 32-byte minimum (header-only)
packet, plus a full 128-byte cache line for data-bearing messages.  The
evaluation's "network messages" and traffic-byte figures count exactly what
goes through :meth:`repro.network.fabric.Fabric.send`.

``Message`` is a slotted, pooled object rather than a dataclass: the sim
core allocates one per hop of every transaction, so construction cost and
per-message dict churn dominated profiles (see docs/performance.md).  The
pool follows sesc's ``pool<CacheCoherenceMsg>`` idiom — instances released
at the fabric's delivery quiescence point are recycled through a free list,
while ``msg_id`` numbering stays a pure function of construction order so
reprs, traces and ``ProtocolError`` text replay byte-for-byte.
"""

import enum
import itertools
from types import MappingProxyType


class MsgType(enum.Enum):
    """All network message types, with ``data`` marking data-bearing ones."""

    # -- processor-initiated requests
    GETS = ("GETS", False)                # read-shared request
    GETX = ("GETX", False)                # read-exclusive / upgrade request

    # -- home/owner replies
    DATA_SHARED = ("DATA_SHARED", True)   # shared data reply
    DATA_EXCL = ("DATA_EXCL", True)       # exclusive data reply ("spec reply")
    ACK_X = ("ACK_X", False)              # exclusive grant without data (upgrade)

    # -- invalidation / intervention
    INV = ("INV", False)                  # invalidate a shared copy
    INV_ACK = ("INV_ACK", False)          # invalidation acknowledgement
    INTERVENTION = ("INTERVENTION", False)  # downgrade owner to SHARED
    SHARED_WB = ("SHARED_WB", True)       # owner -> home: downgraded data
    SHARED_RESP = ("SHARED_RESP", True)   # owner -> requester: shared data
    EXCL_RESP = ("EXCL_RESP", True)       # owner -> requester: ownership + data
    XFER_OWNER = ("XFER_OWNER", False)    # owner -> home: ownership moved

    # -- writeback
    WRITEBACK = ("WRITEBACK", True)       # dirty eviction, carries data
    EVICT_CLEAN = ("EVICT_CLEAN", False)  # clean-exclusive eviction notice
    WB_ACK = ("WB_ACK", False)

    # -- flow control
    NACK = ("NACK", False)                # busy, retry at same target
    NACK_NOT_HOME = ("NACK_NOT_HOME", False)  # stale delegation hint, retry at home

    # -- delegation (paper §2.3)
    DELEGATE = ("DELEGATE", True)         # home -> producer: dir info + data
    UNDELE = ("UNDELE", True)             # producer -> home: dir info + data
    UNDELE_REQ = ("UNDELE_REQ", False)    # home -> producer: recall delegation
    HOME_CHANGED = ("HOME_CHANGED", False)  # home -> requester: delegation hint

    # -- speculative updates (paper §2.4)
    UPDATE = ("UPDATE", True)             # producer -> consumer: pushed data
    UPDATE_ACK = ("UPDATE_ACK", False)    # consumer -> producer: receipt ack
    # UPDATE_ACK exists for a correctness reason the model checker found:
    # undelegation must not return the directory to the home while pushed
    # updates are still in flight, or a later INV from the *home* (a
    # different FIFO channel) can be overtaken by a stale update.

    def __init__(self, label, data_bearing):
        self.label = label
        self.data_bearing = data_bearing


# Dense per-type attributes for the hot path, assigned after the enum is
# sealed (enum members reject new attributes only during class creation):
#   index        — 0..N-1 position, used by the hub's pre-bound handler
#                  array and the fabric's per-type size table
#   sent_counter — the fully-formed "msg.sent.<LABEL>" stats key, so the
#                  fabric does not rebuild the string per send
for _i, _member in enumerate(MsgType):
    _member.index = _i
    _member.sent_counter = "msg.sent." + _member.label
del _i, _member

NUM_MSG_TYPES = len(MsgType)

#: Shared immutable empty payload.  Header-only messages (the majority —
#: every NACK, INV, ack...) used to allocate a fresh dict each; now they
#: share this sentinel.  It supports the full read API (``.get``,
#: ``[...]``, ``dict(...)``, truthiness) and raises on mutation, which is
#: exactly the aliasing guarantee a per-message empty dict gave us.
EMPTY_PAYLOAD = MappingProxyType({})


_msg_ids = itertools.count()


def reset_msg_ids():
    """Restart the message-id sequence.

    ``System`` calls this at construction so message numbering — which
    appears in reprs, traces and ``ProtocolError`` text — is a pure
    function of the run, not of how many messages earlier simulations in
    the same process happened to allocate.  Without the reset, a fuzz
    repro artifact whose failure message embeds a ``Msg#`` would never
    replay byte-for-byte.
    """
    global _msg_ids
    _msg_ids = itertools.count()


class Message:
    """One network packet.

    ``payload`` carries protocol metadata that would ride in real packet
    fields: requester identity, directory snapshots for DELEGATE/UNDELE,
    pending-request info, etc.  ``value`` is the cache-line data image for
    data-bearing types.

    Construction transparently draws from a bounded free list (see
    :meth:`release`); every field is (re)assigned on construction, and a
    fresh ``msg_id`` is drawn unless the caller pins one, so pooling is
    invisible to protocol code and to determinism.
    """

    __slots__ = ("mtype", "src", "dst", "addr", "value", "payload", "msg_id",
                 "_pooled")

    _pool = []
    _pool_limit = 4096
    pool_allocations = 0  # total heap allocations (pool misses)

    def __new__(cls, mtype, src, dst, addr, value=0, payload=EMPTY_PAYLOAD,
                msg_id=None):
        pool = cls._pool
        if pool:
            self = pool.pop()
        else:
            self = super().__new__(cls)
            cls.pool_allocations += 1
        self.mtype = mtype
        self.src = src
        self.dst = dst
        self.addr = addr
        self.value = value
        self.payload = payload
        self.msg_id = next(_msg_ids) if msg_id is None else msg_id
        self._pooled = False
        return self

    def release(self):
        """Return this message to the free list.

        Callers must prove (via refcount at the dispatch quiescence point)
        that no handler retained the message.  The payload is dropped
        first so pooled instances never pin protocol dicts alive.  A
        double release would alias one object under two in-flight
        messages — the classic pool-lifecycle corruption — so it raises
        instead of corrupting silently.
        """
        if self._pooled:
            raise ValueError("double release of %r" % self)
        self.payload = EMPTY_PAYLOAD
        pool = Message._pool
        if len(pool) < Message._pool_limit:
            self._pooled = True
            pool.append(self)

    @classmethod
    def pool_stats(cls):
        """Free-list statistics: ``{"free", "allocations"}``."""
        return {"free": len(cls._pool), "allocations": cls.pool_allocations}

    @classmethod
    def pool_audit(cls):
        """Invariant check over the free list; returns a list of problems.

        Clean pools return ``[]``.  Checked: the list never exceeds its
        limit, no instance appears twice (aliasing), every pooled instance
        is flagged ``_pooled`` and has dropped its payload.  The fuzz
        oracles run this after every case so a lifecycle regression
        (handler exception paths, redispatched messages) fails loudly.
        """
        problems = []
        pool = cls._pool
        if len(pool) > cls._pool_limit:
            problems.append("free list over limit: %d > %d"
                            % (len(pool), cls._pool_limit))
        if len({id(msg) for msg in pool}) != len(pool):
            problems.append("aliased instance on the free list")
        for msg in pool:
            if not msg._pooled:
                problems.append("pooled message %r not flagged _pooled" % msg)
                break
        for msg in pool:
            if msg.payload is not EMPTY_PAYLOAD:
                problems.append("pooled message %r retains a payload" % msg)
                break
        return problems

    @classmethod
    def clear_pool(cls):
        """Drop all pooled instances (tests / benchmarks)."""
        cls._pool.clear()
        cls.pool_allocations = 0

    def size_bytes(self, header_bytes, line_size):
        return header_bytes + (line_size if self.mtype.data_bearing else 0)

    def __repr__(self):
        return "Msg#%d(%s %d->%d 0x%x)" % (
            self.msg_id, self.mtype.label, self.src, self.dst, self.addr)
