"""Coherence message vocabulary and wire-size accounting.

Every inter-node interaction in the protocol is one of these message types.
Sizes follow the paper's NUMALink model: a 32-byte minimum (header-only)
packet, plus a full 128-byte cache line for data-bearing messages.  The
evaluation's "network messages" and traffic-byte figures count exactly what
goes through :meth:`repro.network.fabric.Fabric.send`.
"""

import enum
import itertools
from dataclasses import dataclass, field


class MsgType(enum.Enum):
    """All network message types, with ``data`` marking data-bearing ones."""

    # -- processor-initiated requests
    GETS = ("GETS", False)                # read-shared request
    GETX = ("GETX", False)                # read-exclusive / upgrade request

    # -- home/owner replies
    DATA_SHARED = ("DATA_SHARED", True)   # shared data reply
    DATA_EXCL = ("DATA_EXCL", True)       # exclusive data reply ("spec reply")
    ACK_X = ("ACK_X", False)              # exclusive grant without data (upgrade)

    # -- invalidation / intervention
    INV = ("INV", False)                  # invalidate a shared copy
    INV_ACK = ("INV_ACK", False)          # invalidation acknowledgement
    INTERVENTION = ("INTERVENTION", False)  # downgrade owner to SHARED
    SHARED_WB = ("SHARED_WB", True)       # owner -> home: downgraded data
    SHARED_RESP = ("SHARED_RESP", True)   # owner -> requester: shared data
    EXCL_RESP = ("EXCL_RESP", True)       # owner -> requester: ownership + data
    XFER_OWNER = ("XFER_OWNER", False)    # owner -> home: ownership moved

    # -- writeback
    WRITEBACK = ("WRITEBACK", True)       # dirty eviction, carries data
    EVICT_CLEAN = ("EVICT_CLEAN", False)  # clean-exclusive eviction notice
    WB_ACK = ("WB_ACK", False)

    # -- flow control
    NACK = ("NACK", False)                # busy, retry at same target
    NACK_NOT_HOME = ("NACK_NOT_HOME", False)  # stale delegation hint, retry at home

    # -- delegation (paper §2.3)
    DELEGATE = ("DELEGATE", True)         # home -> producer: dir info + data
    UNDELE = ("UNDELE", True)             # producer -> home: dir info + data
    UNDELE_REQ = ("UNDELE_REQ", False)    # home -> producer: recall delegation
    HOME_CHANGED = ("HOME_CHANGED", False)  # home -> requester: delegation hint

    # -- speculative updates (paper §2.4)
    UPDATE = ("UPDATE", True)             # producer -> consumer: pushed data
    UPDATE_ACK = ("UPDATE_ACK", False)    # consumer -> producer: receipt ack
    # UPDATE_ACK exists for a correctness reason the model checker found:
    # undelegation must not return the directory to the home while pushed
    # updates are still in flight, or a later INV from the *home* (a
    # different FIFO channel) can be overtaken by a stale update.

    def __init__(self, label, data_bearing):
        self.label = label
        self.data_bearing = data_bearing


_msg_ids = itertools.count()


def reset_msg_ids():
    """Restart the message-id sequence.

    ``System`` calls this at construction so message numbering — which
    appears in reprs, traces and ``ProtocolError`` text — is a pure
    function of the run, not of how many messages earlier simulations in
    the same process happened to allocate.  Without the reset, a fuzz
    repro artifact whose failure message embeds a ``Msg#`` would never
    replay byte-for-byte.
    """
    global _msg_ids
    _msg_ids = itertools.count()


@dataclass
class Message:
    """One network packet.

    ``payload`` carries protocol metadata that would ride in real packet
    fields: requester identity, directory snapshots for DELEGATE/UNDELE,
    pending-request info, etc.  ``value`` is the cache-line data image for
    data-bearing types.
    """

    mtype: MsgType
    src: int
    dst: int
    addr: int
    value: int = 0
    payload: dict = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))

    def size_bytes(self, header_bytes, line_size):
        return header_bytes + (line_size if self.mtype.data_bearing else 0)

    def __repr__(self):
        return "Msg#%d(%s %d->%d 0x%x)" % (
            self.msg_id, self.mtype.label, self.src, self.dst, self.addr)
