"""Interconnect model: messages, fat-tree topology, delivery fabric."""

from .chaos import ChaosConfig, ChaosPolicy, chaos_from_dict, chaos_to_dict
from .fabric import Fabric
from .message import Message, MsgType
from .topology import FatTree

__all__ = ["Fabric", "Message", "MsgType", "FatTree",
           "ChaosConfig", "ChaosPolicy", "chaos_from_dict", "chaos_to_dict"]
