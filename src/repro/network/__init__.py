"""Interconnect model: messages, fat-tree topology, delivery fabric."""

from .fabric import Fabric
from .message import Message, MsgType
from .topology import FatTree

__all__ = ["Fabric", "Message", "MsgType", "FatTree"]
