"""Fat-tree interconnect topology (NUMALink-4-like, paper §3.1).

The paper's network is a fat tree with eight children per non-leaf router
and a 50 ns (100-cycle) node-to-node hop latency; router contention is not
modelled.  We build the tree to compute link distances between nodes —
nodes under the same leaf router are closer than nodes in different
subtrees — and scale latency so a canonical cross-leaf traversal costs
exactly ``hop_latency`` cycles.
"""

from ..common.errors import ConfigError


class FatTree:
    """Distance/latency oracle over a radix-``r`` fat tree of ``n`` nodes."""

    def __init__(self, num_nodes, network_config):
        if num_nodes < 1:
            raise ConfigError("fat tree needs at least one node")
        self.num_nodes = num_nodes
        self.config = network_config
        self._radix = network_config.router_radix
        # Depth of the router tree: leaves host `radix` nodes each, each
        # additional level multiplies capacity by `radix`.
        depth = 1
        capacity = self._radix
        while capacity < num_nodes:
            depth += 1
            capacity *= self._radix
        self.depth = depth

    def leaf_of(self, node):
        """Index of the leaf router hosting ``node``."""
        self._check(node)
        return node // self._radix

    def levels_climbed(self, a, b):
        """Router levels climbed to reach the lowest common ancestor.

        0 for the same node or two nodes under one leaf router; 1 for a
        canonical cross-leaf traversal; up to ``depth - 1`` between nodes
        in maximally distant subtrees.
        """
        self._check(a)
        self._check(b)
        ra, rb = a // self._radix, b // self._radix
        levels = 0
        while ra != rb:
            ra //= self._radix
            rb //= self._radix
            levels += 1
        return levels

    def router_links(self, a, b):
        """Number of router-to-router/node links on the a->b path."""
        if a == b:
            self._check(a)
            return 0
        # node->leaf and leaf->node, plus an up/down pair per level climbed.
        return 2 + 2 * self.levels_climbed(a, b)

    def latency(self, a, b):
        """Node-to-node latency in CPU cycles.

        Same node: 0.  Same leaf router: ``hop_latency * intra_leaf_fraction``.
        A canonical cross-leaf traversal (one router level climbed — the
        farthest any message travels on the paper's 16-node machine) costs
        exactly ``hop_latency``; each additional level climbed adds
        ``hop_latency * level_latency_frac`` (fat trees keep upper levels
        fast/wide, so the increment is fractional, not a full hop).
        """
        if a == b:
            return 0
        cfg = self.config
        levels = self.levels_climbed(a, b)
        if levels == 0:
            return max(1, round(cfg.hop_latency * cfg.intra_leaf_fraction))
        if levels == 1:
            return cfg.hop_latency
        return cfg.hop_latency + round(
            cfg.hop_latency * cfg.level_latency_frac * (levels - 1))

    def _check(self, node):
        if not 0 <= node < self.num_nodes:
            raise ConfigError("node %r out of range [0, %d)" % (node, self.num_nodes))
