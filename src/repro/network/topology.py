"""Fat-tree interconnect topology (NUMALink-4-like, paper §3.1).

The paper's network is a fat tree with eight children per non-leaf router
and a 50 ns (100-cycle) node-to-node hop latency; router contention is not
modelled.  We build the tree to compute link distances between nodes —
nodes under the same leaf router are closer than nodes in different
subtrees — and scale latency so a canonical cross-leaf traversal costs
exactly ``hop_latency`` cycles.
"""

from ..common.errors import ConfigError


class FatTree:
    """Distance/latency oracle over a radix-``r`` fat tree of ``n`` nodes."""

    def __init__(self, num_nodes, network_config):
        if num_nodes < 1:
            raise ConfigError("fat tree needs at least one node")
        self.num_nodes = num_nodes
        self.config = network_config
        self._radix = network_config.router_radix
        # Depth of the router tree: leaves host `radix` nodes each, each
        # additional level multiplies capacity by `radix`.
        depth = 1
        capacity = self._radix
        while capacity < num_nodes:
            depth += 1
            capacity *= self._radix
        self.depth = depth

    def leaf_of(self, node):
        """Index of the leaf router hosting ``node``."""
        self._check(node)
        return node // self._radix

    def router_links(self, a, b):
        """Number of router-to-router/node links on the a->b path."""
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        # Climb from each leaf until the ancestor routers coincide.
        ra, rb = self.leaf_of(a), self.leaf_of(b)
        links = 2  # node->leaf and leaf->node
        while ra != rb:
            ra //= self._radix
            rb //= self._radix
            links += 2
        return links

    def latency(self, a, b):
        """Node-to-node latency in CPU cycles.

        Same node: 0.  Same leaf router: ``hop_latency * intra_leaf_fraction``.
        Anything crossing leaf routers costs the full ``hop_latency`` — the
        paper's uniform remote-hop cost — regardless of how many levels are
        climbed (fat trees keep upper levels fast/wide).
        """
        if a == b:
            return 0
        cfg = self.config
        if self.leaf_of(a) == self.leaf_of(b):
            return max(1, round(cfg.hop_latency * cfg.intra_leaf_fraction))
        return cfg.hop_latency

    def _check(self, node):
        if not 0 <= node < self.num_nodes:
            raise ConfigError("node %r out of range [0, %d)" % (node, self.num_nodes))
