"""Message delivery engine.

The fabric owns traffic accounting (message and byte counters — the
evaluation's "network messages" metric) and delivery timing: topology
latency plus hub port contention at the receiver.  Each hub drains its
ingress port serially, one message per ``hub_occupancy`` cycles, matching
the paper's "we do not model contention within the routers, but do model
hub port contention".

This is the hottest module in the simulator (every message crosses
:meth:`Fabric.send` and :meth:`Fabric._deliver`), so per-send work is
precomputed at construction: wire sizes and stats-counter keys per message
type, lazily materialised per-source latency rows, and a flat
``busy_until`` list instead of port objects.  Delivery doubles as the
message pool's quiescence point: after a handler returns, a message whose
refcount proves no one retained it goes back to the free list.
"""

from heapq import heappush
from sys import getrefcount

from ..common.stats import MSG_BYTES
from .message import EMPTY_PAYLOAD, Message, MsgType
from .topology import FatTree


class Fabric:
    """Connects hubs; delivers messages with latency + port contention."""

    def __init__(self, config, events, stats, tracer=None, chaos=None):
        self.config = config
        self.events = events
        self.stats = stats
        self._tracer = tracer
        self._chaos = chaos  # None = no fault injection (the fast path)
        self.topology = FatTree(config.num_nodes, config.network)
        num_nodes = config.num_nodes
        self._occupancy = config.network.hub_occupancy
        self._busy_until = [0] * num_nodes
        self._handlers = [None] * num_nodes
        # Optional per-node pre-bound handler tables indexed by
        # MsgType.index (see Hub._handler_array): lets delivery skip the
        # hub.dispatch frame entirely.  Nodes attached with a bare
        # callable (tests use spies) take the generic path.
        self._tables = [None] * num_nodes
        self.delivered = 0
        # Per-type precomputation, indexed by the dense MsgType.index.
        header = config.network.header_bytes
        line = config.line_size
        self._size_by_type = [
            header + (line if mtype.data_bearing else 0) for mtype in MsgType
        ]
        self._sent_key_by_type = [mtype.sent_counter for mtype in MsgType]
        # Latency rows are filled on first use per source node: an
        # all-pairs matrix would be O(nodes^2) up-front for the 1024-node
        # goal, but each run only exercises the rows of active nodes.
        self._latency_rows = [None] * num_nodes
        self._counters = stats._counters
        # Tracer and chaos policy are fixed for the fabric's lifetime, so
        # the common bench/eval configuration (neither present) can skip
        # their per-send checks entirely via a specialised bound method.
        if tracer is None and chaos is None:
            self.send = self._send_fast
        if chaos is None:
            self._deliver = self._deliver_fast

    # ``tracer`` and ``chaos`` are read-only after construction because the
    # fast-path methods above are *chosen* from their construction-time
    # values.  A late ``fabric.tracer = Tracer()`` used to be silently
    # ignored on the fast path (the bug this guards against); now it
    # raises so the caller learns to pass the hook to System/Fabric up
    # front.  Re-assigning the identical object stays legal — idempotent
    # wiring code does that.

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value):
        if value is not self._tracer:
            raise RuntimeError(
                "fabric.tracer cannot change after construction: the "
                "traced/untraced send path is bound at __init__; pass "
                "tracer= to System() or Fabric() instead")
        self._tracer = value

    @property
    def chaos(self):
        return self._chaos

    @chaos.setter
    def chaos(self, value):
        if value is not self._chaos:
            raise RuntimeError(
                "fabric.chaos cannot change after construction: the "
                "chaos-free delivery path is bound at __init__; pass "
                "chaos= to System() or Fabric() instead")
        self._chaos = value

    def attach(self, node, handler, table=None):
        """Register the message handler (hub) for ``node``.

        ``table``, when given, is a pre-bound per-MsgType handler list
        (indexed by ``MsgType.index``) delivery may use directly instead
        of calling ``handler``; ``handler`` remains the fallback for
        anything that is not a plain in-vocabulary message.
        """
        self._handlers[node] = handler
        self._tables[node] = table

    def _latency_row(self, src):
        latency = self.topology.latency
        row = [latency(src, dst) for dst in range(self.config.num_nodes)]
        self._latency_rows[src] = row
        return row

    def send(self, msg):
        """Put ``msg`` on the wire; it will be handled at the destination
        after topology latency and port serialisation.

        Node-local sends (src == dst) are legal — e.g. a node whose home is
        itself — and are delivered after port occupancy only, without
        counting as network traffic.
        """
        src = msg.src
        dst = msg.dst
        remote = src != dst
        events = self.events
        if self._tracer is not None:
            self._tracer.msg_send(msg, events.now, remote)
        if remote:
            index = msg.mtype.index
            counters = self._counters
            counters[self._sent_key_by_type[index]] += 1
            counters[MSG_BYTES] += self._size_by_type[index]
        row = self._latency_rows[src]
        if row is None:
            row = self._latency_row(src)
        arrival = events._now + row[dst]
        chaos = self._chaos if remote else None
        if chaos is not None:
            arrival = chaos.arrival(msg, arrival)
        busy = self._busy_until
        start = busy[dst]
        if arrival > start:
            start = arrival
        deliver_at = start + self._occupancy
        busy[dst] = deliver_at
        if chaos is None:
            # Structural invariant: arrival = now + non-negative latency,
            # and busy_until never moves backwards, so the unchecked
            # inlined push (the body of EventQueue.push_at) is safe here.
            heappush(events._heap,
                     (deliver_at, events._seq, self._deliver, (msg,)))
            events._seq += 1
        else:
            events.schedule_at(deliver_at, self._deliver, msg)
        if chaos is not None:
            dup_arrival = chaos.duplicate_arrival(msg, arrival)
            if dup_arrival is not None:
                # A fresh copy so the two deliveries never share a mutable
                # payload dict (handlers write into payloads).
                dup = Message(msg.mtype, src=src, dst=dst,
                              addr=msg.addr, value=msg.value,
                              payload=dict(msg.payload))
                start = busy[dst]
                if dup_arrival > start:
                    start = dup_arrival
                dup_at = start + self._occupancy
                busy[dst] = dup_at
                events.schedule_at(dup_at, self._deliver, dup)

    def _send_fast(self, msg):
        """:meth:`send` specialised for tracer is None and chaos is None
        (bound over ``self.send`` at construction).  Must stay behaviour-
        identical to the general path under those conditions."""
        src = msg.src
        dst = msg.dst
        events = self.events
        if src != dst:
            index = msg.mtype.index
            counters = self._counters
            counters[self._sent_key_by_type[index]] += 1
            counters[MSG_BYTES] += self._size_by_type[index]
        row = self._latency_rows[src]
        if row is None:
            row = self._latency_row(src)
        arrival = events._now + row[dst]
        busy = self._busy_until
        start = busy[dst]
        if arrival > start:
            start = arrival
        deliver_at = start + self._occupancy
        busy[dst] = deliver_at
        heappush(events._heap,
                 (deliver_at, events._seq, self._deliver, (msg,)))
        events._seq += 1

    def _deliver(self, msg):
        dst = msg.dst
        handler = None
        table = self._tables[dst]
        if table is not None:
            try:
                handler = table[msg.mtype.index]
            except (AttributeError, TypeError, IndexError):
                handler = None  # not a real MsgType; use the generic path
        if handler is None:
            handler = self._handlers[dst]
            if handler is None:
                raise RuntimeError("no handler attached for node %d" % dst)
        self.delivered += 1
        if self._chaos is not None and msg.src != dst:
            nack = self._chaos.forced_nack(msg)
            if nack is not None:
                self.send(nack)
                return
        # Refcount-gated pool recycling: if the handler retained the
        # message anywhere (BusyRecord.req_msg, a delayed re-send on the
        # event queue, a trace buffer), its refcount rises and we leave it
        # alone; unchanged means this frame holds the last references and
        # the message is quiescent.  An exception skips release entirely.
        before = getrefcount(msg)
        handler(msg)
        if getrefcount(msg) == before and not msg._pooled:
            # Inlined Message.release() — one frame per delivered message.
            msg.payload = EMPTY_PAYLOAD
            pool = Message._pool
            if len(pool) < Message._pool_limit:
                msg._pooled = True
                pool.append(msg)

    def _deliver_fast(self, msg):
        """:meth:`_deliver` minus the chaos hook (bound over ``_deliver``
        at construction when no chaos policy is installed)."""
        dst = msg.dst
        handler = None
        table = self._tables[dst]
        if table is not None:
            try:
                handler = table[msg.mtype.index]
            except (AttributeError, TypeError, IndexError):
                handler = None  # not a real MsgType; use the generic path
        if handler is None:
            handler = self._handlers[dst]
            if handler is None:
                raise RuntimeError("no handler attached for node %d" % dst)
        self.delivered += 1
        before = getrefcount(msg)
        handler(msg)
        if getrefcount(msg) == before and not msg._pooled:
            msg.payload = EMPTY_PAYLOAD
            pool = Message._pool
            if len(pool) < Message._pool_limit:
                msg._pooled = True
                pool.append(msg)
