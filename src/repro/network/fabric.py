"""Message delivery engine.

The fabric owns traffic accounting (message and byte counters — the
evaluation's "network messages" metric) and delivery timing: topology
latency plus hub port contention at the receiver.  Each hub drains its
ingress port serially, one message per ``hub_occupancy`` cycles, matching
the paper's "we do not model contention within the routers, but do model
hub port contention".
"""

from ..common.stats import MSG_BYTES, MSG_SENT
from .message import Message
from .topology import FatTree


class _HubPort:
    """Serial ingress port of one hub: FIFO service, fixed occupancy."""

    def __init__(self, occupancy):
        self.occupancy = occupancy
        self.busy_until = 0

    def service_time(self, arrival):
        start = max(arrival, self.busy_until)
        done = start + self.occupancy
        self.busy_until = done
        return done


class Fabric:
    """Connects hubs; delivers messages with latency + port contention."""

    def __init__(self, config, events, stats, tracer=None, chaos=None):
        self.config = config
        self.events = events
        self.stats = stats
        self.tracer = tracer
        self.chaos = chaos  # None = no fault injection (the fast path)
        self.topology = FatTree(config.num_nodes, config.network)
        self._ports = [_HubPort(config.network.hub_occupancy)
                       for _ in range(config.num_nodes)]
        self._handlers = [None] * config.num_nodes
        self.delivered = 0

    def attach(self, node, handler):
        """Register the message handler (hub) for ``node``."""
        self._handlers[node] = handler

    def send(self, msg):
        """Put ``msg`` on the wire; it will be handled at the destination
        after topology latency and port serialisation.

        Node-local sends (src == dst) are legal — e.g. a node whose home is
        itself — and are delivered after port occupancy only, without
        counting as network traffic.
        """
        remote = msg.src != msg.dst
        if self.tracer is not None:
            self.tracer.msg_send(msg, self.events.now, remote)
        if remote:
            self.stats.inc(MSG_SENT + msg.mtype.label)
            self.stats.inc(
                MSG_BYTES,
                msg.size_bytes(self.config.network.header_bytes, self.config.line_size),
            )
        latency = self.topology.latency(msg.src, msg.dst)
        arrival = self.events.now + latency
        chaos = self.chaos if remote else None
        if chaos is not None:
            arrival = chaos.arrival(msg, arrival)
        deliver_at = self._ports[msg.dst].service_time(arrival)
        self.events.schedule_at(deliver_at, self._deliver, msg)
        if chaos is not None:
            dup_arrival = chaos.duplicate_arrival(msg, arrival)
            if dup_arrival is not None:
                # A fresh copy so the two deliveries never share a mutable
                # payload dict (handlers write into payloads).
                dup = Message(msg.mtype, src=msg.src, dst=msg.dst,
                              addr=msg.addr, value=msg.value,
                              payload=dict(msg.payload))
                dup_at = self._ports[msg.dst].service_time(dup_arrival)
                self.events.schedule_at(dup_at, self._deliver, dup)

    def _deliver(self, msg):
        handler = self._handlers[msg.dst]
        if handler is None:
            raise RuntimeError("no handler attached for node %d" % msg.dst)
        self.delivered += 1
        if self.chaos is not None and msg.src != msg.dst:
            nack = self.chaos.forced_nack(msg)
            if nack is not None:
                self.send(nack)
                return
        handler(msg)
