#!/usr/bin/env python
"""CI smoke for ``repro serve``: the real subprocess, the real fleet.

Boots the service the way an operator would (``python -m repro serve``),
drives it over HTTP with :class:`repro.serve.client.ServeClient`, and
asserts the end-to-end contract:

1. the service comes up and answers ``/healthz``;
2. a tiny sweep POSTed to ``/jobs`` runs to ``done``, followed live over
   the job's SSE stream (progress/unit events arrive before the terminal
   ``job`` frame);
3. ``/metrics`` reflects the run (units executed, workers configured);
4. a duplicate POST of the same sweep is served entirely from the shared
   result cache — non-zero hit-rate, zero new executions.

Exit code 0 on success; any assertion or timeout is a failure.
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve.client import ServeClient  # noqa: E402

SWEEP = {"kind": "sweep", "apps": ["ocean"], "systems": ["base", "rac32k"],
         "nodes": 4, "scale": 0.05}


def wait_for_port(port_file, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError("serve exited early with code %d"
                               % process.returncode)
        try:
            with open(port_file) as fileobj:
                text = fileobj.read().strip()
            if text:
                return int(text)
        except OSError:
            pass
        time.sleep(0.1)
    raise TimeoutError("service did not write %s within %.0fs"
                       % (port_file, timeout))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    port_file = os.path.join(tmp, "port")
    process = subprocess.Popen([
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--workers", str(args.workers),
        "--cache-dir", os.path.join(tmp, "cache"),
        "--port-file", port_file,
    ])
    try:
        port = wait_for_port(port_file, process)
        client = ServeClient("http://127.0.0.1:%d" % port, client_id="smoke")
        assert client.healthz() == {"ok": True}
        print("serve-smoke: up on port %d" % port)

        job = client.post_job(SWEEP)
        final = client.follow(job["id"], timeout=args.timeout)
        assert final["state"] == "done", final
        kinds = [event for event, _ in final["sse_events"]]
        assert "job" in kinds, kinds
        print("serve-smoke: job %s done, %d SSE events (%s)"
              % (job["id"], len(kinds), ",".join(sorted(set(kinds)))))

        metrics = client.metrics()
        units = metrics["units"]
        assert units["executed"] == len(SWEEP["systems"]), units
        assert metrics["workers"]["fleet"] == args.workers, metrics
        for unit in final["units"]:
            payload = client.result(unit["key"])
            assert payload["cycles"] > 0, payload

        repeat = client.post_job(SWEEP)
        refinal = client.follow(repeat["id"], timeout=args.timeout)
        assert refinal["state"] == "done", refinal
        assert all(unit["cached"] for unit in refinal["units"]), refinal
        metrics = client.metrics()
        assert metrics["units"]["executed"] == len(SWEEP["systems"]), \
            metrics["units"]
        assert metrics["cache"]["hit_rate"] > 0, metrics["cache"]
        print("serve-smoke: duplicate POST served from cache "
              "(hit_rate=%.2f, executed still %d)"
              % (metrics["cache"]["hit_rate"],
                 metrics["units"]["executed"]))
        print("serve-smoke: ok")
        return 0
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
