#!/usr/bin/env python
"""Regression gate for the committed headline benchmark records.

Finds the *latest* committed ``BENCH_NNNN.json`` (highest number),
re-runs the same headline sweep that produced it (cold cache, same
scale/seed/worker request), and fails if the fresh wall-clock mean
regresses more than ``--tolerance`` against the committed mean.

The full benchmark trajectory — every committed ``BENCH_*.json`` in
order — is printed on every invocation, pass or fail, so a regression
log always shows where the number came from and how it has moved across
PRs.

The tolerance default is deliberately loose (50%, overridable via
``--tolerance`` or the ``BENCH_GATE_TOLERANCE`` environment variable):
shared CI runners and 1-core VMs drift by tens of percent, and the gate
exists to catch order-of-magnitude cliffs, not 5% noise.  The fresh
measurement takes the best of ``--reruns`` sweeps (default 2) for the
same reason — the *minimum* of a few runs is the standard noise-robust
wall-clock estimator.

Usage::

    python tools/bench_gate.py                   # latest BENCH_*.json
    python tools/bench_gate.py --record BENCH_0006.json --tolerance 0.5
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile

DEFAULT_TOLERANCE = 0.50
DEFAULT_RERUNS = 2

_RECORD_RE = re.compile(r"BENCH_(\d+)\.json$")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def committed_records(root=None):
    """All ``BENCH_NNNN.json`` records in numeric order."""
    root = root or repo_root()
    records = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        match = _RECORD_RE.search(os.path.basename(path))
        if match:
            records.append((int(match.group(1)), path))
    records.sort()
    return [path for _num, path in records]


def load_record(path):
    with open(path) as fileobj:
        doc = json.load(fileobj)
    bench = doc["benchmarks"][0]
    # Job accounting lives in the "sweep" block for `repro sweep` records
    # and in the benchmark entry's extra_info for `repro scale` ones.
    accounting = doc.get("sweep") or {
        "total": bench.get("extra_info", {}).get("total_jobs")}
    return bench["stats"], bench["params"], accounting, \
        bench.get("group", "sweep")


def print_trajectory(records, fresh=None):
    """The full benchmark history as a table; ``fresh`` (mean seconds)
    is appended as a final uncommitted row when given."""
    rows = []
    prev_mean = None
    for path in records:
        stats, params, _accounting, _group = load_record(path)
        mean = stats["mean"]
        delta = ("%+.0f%%" % (100.0 * (mean / prev_mean - 1.0))
                 if prev_mean else "-")
        rows.append((os.path.basename(path), mean, stats.get("rounds", 1),
                     params.get("jobs"), params.get("scale"), delta))
        prev_mean = mean
    if fresh is not None:
        delta = ("%+.0f%%" % (100.0 * (fresh / prev_mean - 1.0))
                 if prev_mean else "-")
        rows.append(("(fresh rerun)", fresh, None, None, None, delta))
    print("benchmark trajectory (headline sweep wall-clock):")
    print("  %-18s %10s %7s %6s %7s %8s"
          % ("record", "mean", "rounds", "jobs", "scale", "vs prev"))
    for name, mean, rounds, jobs, scale, delta in rows:
        print("  %-18s %9.3fs %7s %6s %7s %8s"
              % (name, mean,
                 rounds if rounds is not None else "-",
                 jobs if jobs is not None else "-",
                 scale if scale is not None else "-", delta))


def rerun(params, out_path, group="sweep"):
    """Re-run the sweep a record came from; the record's ``group`` picks
    the command (``sweep`` -> the headline sweep, ``scale`` -> the
    scaling study) and its params are the exact CLI arguments."""
    if group == "scale":
        command = [
            sys.executable, "-m", "repro", "scale",
            "--nodes", str(params["nodes"]),
            "--formats", str(params["formats"]),
            "--protocols", str(params["protocols"]),
            "--scale", str(params["scale"]),
            "--seed", str(params["seed"]),
            "--jobs", str(params["jobs"]),
            "--no-cache",
            "--json", out_path,
        ]
    else:
        command = [
            sys.executable, "-m", "repro", "sweep", "headline",
            "--scale", str(params["scale"]),
            "--jobs", str(params["jobs"]),
            "--seed", str(params["seed"]),
            "--no-cache",
            "--json", out_path,
        ]
    print("+ " + " ".join(command), flush=True)
    subprocess.run(command, check=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", default=None,
                        help="benchmark record to gate against "
                             "(default: the latest committed BENCH_*.json)")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
                        help="allowed fractional regression "
                             "(default %.2f)" % DEFAULT_TOLERANCE)
    parser.add_argument("--reruns", type=int, default=DEFAULT_RERUNS,
                        help="fresh sweeps to run; the best (minimum) mean "
                             "is compared (default %d)" % DEFAULT_RERUNS)
    args = parser.parse_args(argv)

    records = committed_records()
    if args.record:
        target = args.record
    elif records:
        target = records[-1]
    else:
        print("bench gate: no committed BENCH_*.json records found")
        return 1

    committed_stats, params, committed_sweep, group = load_record(target)
    committed_mean = committed_stats["mean"]

    fresh_means = []
    fresh_sweep = None
    with tempfile.TemporaryDirectory() as tmp:
        for attempt in range(max(1, args.reruns)):
            fresh_path = os.path.join(tmp, "fresh_%d.json" % attempt)
            rerun(params, fresh_path, group=group)
            stats, _params, fresh_sweep, _group = load_record(fresh_path)
            fresh_means.append(stats["mean"])
    fresh_mean = min(fresh_means)

    print()
    print_trajectory(records, fresh=fresh_mean)
    print()

    if (committed_sweep and fresh_sweep
            and fresh_sweep.get("total") != committed_sweep.get("total")):
        print("bench gate: job count changed (%s -> %s); re-record %s"
              % (committed_sweep.get("total"), fresh_sweep.get("total"),
                 os.path.basename(target)))
        return 1

    ratio = fresh_mean / committed_mean if committed_mean else float("inf")
    budget = 1.0 + args.tolerance
    verdict = "ok" if ratio <= budget else "REGRESSION"
    print("bench gate vs %s: committed %.2fs, fresh best-of-%d %.2fs "
          "(%.2fx, budget %.2fx) -> %s"
          % (os.path.basename(target), committed_mean, len(fresh_means),
             fresh_mean, ratio, budget, verdict))
    return 0 if ratio <= budget else 1


if __name__ == "__main__":
    sys.exit(main())
