#!/usr/bin/env python
"""Regression gate for the committed headline benchmark record.

Re-runs the same headline sweep that produced the committed
``BENCH_0006.json`` (cold cache, same scale and worker count) and fails
if the fresh wall-clock mean regresses more than ``--tolerance`` (default
25%, overridable via the ``BENCH_GATE_TOLERANCE`` environment variable —
CI runners are noisy, so the gate is deliberately loose; it exists to
catch order-of-magnitude cliffs, not 5% drift).

Usage::

    python tools/bench_gate.py                  # gate against BENCH_0006.json
    python tools/bench_gate.py --record other.json --tolerance 0.5
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

DEFAULT_RECORD = "BENCH_0006.json"
DEFAULT_TOLERANCE = 0.25


def load_mean(path):
    with open(path) as fileobj:
        doc = json.load(fileobj)
    bench = doc["benchmarks"][0]
    return bench["stats"]["mean"], bench["params"], doc["sweep"]


def rerun(params, out_path):
    command = [
        sys.executable, "-m", "repro", "sweep", "headline",
        "--scale", str(params["scale"]),
        "--jobs", str(params["jobs"]),
        "--seed", str(params["seed"]),
        "--no-cache",
        "--json", out_path,
    ]
    print("+ " + " ".join(command), flush=True)
    subprocess.run(command, check=True)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", default=DEFAULT_RECORD,
                        help="committed benchmark record to gate against")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args(argv)

    committed_mean, params, committed_sweep = load_mean(args.record)
    with tempfile.TemporaryDirectory() as tmp:
        fresh_path = os.path.join(tmp, "fresh.json")
        rerun(params, fresh_path)
        fresh_mean, _, fresh_sweep = load_mean(fresh_path)

    if fresh_sweep["total"] != committed_sweep["total"]:
        print("bench gate: job count changed (%d -> %d); re-record %s"
              % (committed_sweep["total"], fresh_sweep["total"],
                 args.record))
        return 1

    ratio = fresh_mean / committed_mean if committed_mean else float("inf")
    budget = 1.0 + args.tolerance
    verdict = "ok" if ratio <= budget else "REGRESSION"
    print("bench gate: committed %.2fs, fresh %.2fs (%.2fx, budget %.2fx) "
          "-> %s" % (committed_mean, fresh_mean, ratio, budget, verdict))
    return 0 if ratio <= budget else 1


if __name__ == "__main__":
    sys.exit(main())
